"""Render a recorded JSONL trace as a phase-attributed tree.

Powers ``repro trace t.jsonl``: rebuilds the span tree from the flat
JSONL export, prints it with wall-time per span and interesting
attributes inline, then a per-phase rollup (wall time, share, span
count) and the VM-cycle total — the Figure 5/6 "where did the cycles
go" view for a single run.
"""

from __future__ import annotations

import json

__all__ = ["TraceFormatError", "load_trace", "render_trace", "phase_rollup"]

#: attributes worth showing inline, in display order.
_INLINE_ATTRS = (
    "kernel", "flow", "target", "engine", "compiler", "function", "status",
    "cycles", "instructions", "cached", "skipped", "from_cache", "degraded",
    "events", "error",
)


class TraceFormatError(ValueError):
    """A line of the trace file is not a valid span record."""


def load_trace(lines) -> list[dict]:
    """Parse JSONL span records from an iterable of lines.

    Blank lines are skipped; anything unparsable raises
    :class:`TraceFormatError` with the offending line number.
    """
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(rec, dict) or "span_id" not in rec:
            raise TraceFormatError(
                f"line {lineno}: not a span record (missing span_id)"
            )
        records.append(rec)
    return records


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "?"
    ms = float(seconds) * 1e3
    if ms >= 100:
        return f"{ms:.0f}ms"
    if ms >= 1:
        return f"{ms:.2f}ms"
    return f"{ms * 1e3:.0f}µs"


def _fmt_attrs(attrs: dict) -> str:
    parts = []
    for key in _INLINE_ATTRS:
        if key in attrs:
            v = attrs[key]
            if isinstance(v, float):
                v = f"{v:g}"
            parts.append(f"{key}={v}")
    extra = sum(1 for k in attrs if k not in _INLINE_ATTRS)
    if extra:
        parts.append(f"+{extra} attr(s)")
    return " ".join(parts)


def phase_rollup(records: list[dict]) -> dict:
    """Aggregate wall time / span counts per phase plus VM-cycle totals.

    Wall-time shares are computed against the *root* spans' total (the
    only denominator that is not double counted), and the five pipeline
    phases are always present in the result (zeroed when absent) so the
    rollup shape is stable for tooling.
    """
    from .trace import PHASES

    phases: dict[str, dict] = {
        p: {"spans": 0, "wall_s": 0.0} for p in PHASES
    }
    root_wall = 0.0
    vm_cycles = 0.0
    vm_instructions = 0
    for rec in records:
        phase = rec.get("phase") or "?"
        dur = rec.get("dur_s") or 0.0
        slot = phases.setdefault(phase, {"spans": 0, "wall_s": 0.0})
        slot["spans"] += 1
        slot["wall_s"] += dur
        if rec.get("parent_id") is None:
            root_wall += dur
        if phase == "vm":
            attrs = rec.get("attrs") or {}
            vm_cycles += float(attrs.get("cycles") or 0.0)
            vm_instructions += int(attrs.get("instructions") or 0)
    return {
        "phases": phases,
        "root_wall_s": root_wall,
        "vm_cycles": vm_cycles,
        "vm_instructions": vm_instructions,
    }


def render_trace(records: list[dict], phase: str | None = None) -> str:
    """The ``repro trace`` body: tree + rollup, as one printable string."""
    by_id = {rec["span_id"]: rec for rec in records}
    children: dict[object, list[dict]] = {}
    roots: list[dict] = []
    for rec in records:
        parent = rec.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    for kids in children.values():
        kids.sort(key=lambda r: r["span_id"])
    roots.sort(key=lambda r: r["span_id"])

    lines: list[str] = []

    def visible(rec) -> bool:
        if phase is None:
            return True
        if rec.get("phase") == phase:
            return True
        return any(visible(k) for k in children.get(rec["span_id"], ()))

    def emit(rec, prefix: str, is_last: bool, is_root: bool) -> None:
        if not visible(rec):
            return
        connector = "" if is_root else ("└─ " if is_last
                                        else "├─ ")
        head = f"{prefix}{connector}{rec.get('name', '?')}"
        label = f"[{rec.get('phase', '?')}]"
        attrs = _fmt_attrs(rec.get("attrs") or {})
        lines.append(
            f"{head:<40s} {label:<11s} {_fmt_ms(rec.get('dur_s')):>9s}"
            + (f"  {attrs}" if attrs else "")
        )
        kids = [k for k in children.get(rec["span_id"], ()) if visible(k)]
        child_prefix = prefix if is_root else (
            prefix + ("   " if is_last else "│  ")
        )
        for i, kid in enumerate(kids):
            emit(kid, child_prefix, i == len(kids) - 1, False)

    for i, root in enumerate(roots):
        emit(root, "", True, True)
        if i != len(roots) - 1:
            lines.append("")

    roll = phase_rollup(records)
    lines.append("")
    lines.append("== phase rollup ==")
    lines.append(f"{'phase':<12s} {'spans':>6s} {'wall':>10s} {'share':>7s}")
    denom = roll["root_wall_s"] or 1.0
    for name, slot in sorted(roll["phases"].items()):
        if slot["spans"] == 0 and phase is not None and name != phase:
            continue
        share = slot["wall_s"] / denom
        lines.append(
            f"{name:<12s} {slot['spans']:>6d} "
            f"{_fmt_ms(slot['wall_s']):>10s} {share:>6.1%}"
        )
    lines.append(
        f"roots: {len(roots)} span(s), wall {_fmt_ms(roll['root_wall_s'])}"
    )
    lines.append(
        f"vm: {roll['vm_cycles']:.0f} cycle(s), "
        f"{roll['vm_instructions']} instruction(s)"
    )
    return "\n".join(lines)
