"""Seeded fault injection for the fail-soft pipeline.

Cross-target SIMD translation layers live or die by their fallback paths
(Revec; SIMD-Everywhere) — and fallback paths rot unless they are
exercised.  This module provides a deterministic, seeded fault-injection
framework with injection points threaded through every layer of the
toolchain:

* **bytecode** (:mod:`repro.bytecode.codec`): bit-flips of the encoded
  stream, exercising the container checksum and the stream verifier;
* **JIT** (:mod:`repro.jit.materialize`): forced per-idiom lowering
  failures and whole-function materialization failures, exercising
  loop-granularity scalarization fallback and the compile-level retry;
* **VM** (:mod:`repro.machine.vm` / :mod:`repro.machine.threaded`):
  memory faults on the N-th memory access — raised identically by both
  engines — and base misalignment, exercising trap classification;
* **harness** (:mod:`repro.harness.parallel`): simulated worker crashes
  (``os._exit``) and deadline overruns, exercising pool recovery,
  retry-with-backoff, and cell quarantine;
* **service cache** (:mod:`repro.service.cache`): torn writes — the
  process "dies" between the partial temp-file write and the atomic
  rename — exercising the crash-safe cache discipline (the destination
  entry must never be observable half-written) — and stale cross-replica
  leader markers (a "dead replica" left its advisory ``.lead`` file next
  to a cache entry), exercising the TTL takeover protocol;
* **compile farm** (:mod:`repro.service.farm`): the
  :class:`WorkerCrash`/:class:`WorkerStall` faults also fire inside farm
  worker processes (the active plan ships with every
  :class:`~repro.service.farm.CompileJob`), exercising job rerouting
  after a crashed worker and the per-flight compile-budget watchdog;
* **network gateway** (:mod:`repro.service.gateway`): wire-level faults
  at the TCP front door.  :class:`ConnDrop` fires inside the gateway's
  response writer (the connection is aborted mid-frame, as a crashed
  proxy or flaky link would), exercising the client's torn-response
  detection and retry/failover; :class:`SlowWire`,
  :class:`TruncatedFrame`, and :class:`GarbageFrame` describe *hostile
  client* behavior — the gateway chaos campaign drives real sockets
  with them (slow-dripped bytes, frames cut short, seeded garbage),
  exercising the gateway's framing CRC, idle timeouts, and
  connection hygiene.

A :class:`FaultPlan` is plain picklable data, so it ships to sweep worker
processes.  Faults are *installed* for a dynamic extent::

    from repro import faults

    plan = faults.FaultPlan([faults.MemFault(after=12)])
    with faults.injected(plan):
        run_result = kernel.run(...)      # traps with a classified VMError

Injected exceptions carry the :class:`~repro.errors.FaultInjected` marker
mixin on top of their ordinary classification, so chaos campaigns can
tell an injected trap from a genuine one without special-casing messages.

The injection points are dormant (a single ``is None`` test) when no plan
is installed, so the production path pays effectively nothing.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass

from .errors import FaultInjected

__all__ = [
    "FaultPlan",
    "BitFlip",
    "LoweringFault",
    "MaterializeFault",
    "MemFault",
    "MisalignFault",
    "WorkerCrash",
    "WorkerStall",
    "CacheTornWrite",
    "StaleMarker",
    "ConnDrop",
    "SlowWire",
    "TruncatedFrame",
    "GarbageFrame",
    "BatchStorm",
    "injected",
    "install",
    "uninstall",
    "active_plan",
    "lowering_fails",
    "materialize_fails",
    "corrupt",
    "worker_fault",
    "cache_torn_write",
    "stale_marker",
    "wire_conn_drop",
]


# -- fault descriptions (plain picklable data) --------------------------------


@dataclass(frozen=True)
class BitFlip:
    """Flip one bit of an encoded bytecode stream.

    ``offset``/``bit`` of ``None`` choose a seeded-random position over
    the stream (header included), so a campaign covers magic, checksum,
    and payload corruption alike.
    """

    offset: int | None = None
    bit: int | None = None


@dataclass(frozen=True)
class LoweringFault:
    """Force per-idiom lowering failure: any vector loop group containing
    a matching idiom on a matching target degrades to its scalar loop
    version (``"*"`` matches everything)."""

    idiom: str = "*"
    target: str = "*"


@dataclass(frozen=True)
class MaterializeFault:
    """Force whole-function materialization to fail on first (vector)
    attempt, exercising the compile-level retry that re-materializes with
    every group scalarized."""

    target: str = "*"


@dataclass(frozen=True)
class MemFault:
    """Raise a classified VM memory fault on the ``after``-th memory
    access (scalar or vector, load or store; 1-based).  Both VM engines
    observe the identical access stream, so the trap — type and message —
    is engine-independent by construction.

    ``repeat=False`` (default) is a transient glitch: it fires once per
    install, so a retry of the run survives.  ``repeat=True`` is a
    persistently broken memory system: the fault fires on *every*
    ``after``-th access, defeating retries — this is what drives a
    service target's circuit breaker open and exercises the full
    degradation cascade."""

    after: int = 1
    repeat: bool = False


@dataclass(frozen=True)
class MisalignFault:
    """Simulate an allocator that does not align array bases: harness
    buffers are built with ``base_misalign`` bytes of skew."""

    misalign: int = 4


@dataclass(frozen=True)
class WorkerCrash:
    """Hard-kill (``os._exit``) the worker process that picks up a
    matching unit of work — the process dies mid-task, as a segfault
    would.  Fires in sweep workers (:mod:`repro.harness.parallel`) and in
    compile-farm workers (:mod:`repro.service.farm`), where the farm must
    detect the broken pool and reroute the compile."""

    kernel: str = "*"
    flow: str = "*"
    exit_code: int = 17


@dataclass(frozen=True)
class WorkerStall:
    """Stall a matching unit of work (sleep ``seconds``), so the timeout
    machinery must reclaim the worker: the sweep harness's per-cell
    timeout, or the farm's per-flight compile-budget watchdog.  Small
    values double as a deterministic model of backend compile latency in
    benchmarks (the sleep runs on the *worker's* schedule, exactly like
    native codegen on the worker's core)."""

    kernel: str = "*"
    flow: str = "*"
    seconds: float = 3600.0


@dataclass(frozen=True)
class CacheTornWrite:
    """Simulate a crash in the middle of a kernel-cache entry write: a
    partial temp file is produced, the atomic rename never happens, and a
    classified injection-marked :class:`~repro.service.cache.CacheError`
    is raised.  ``count`` bounds how many writes fail (None = all writes
    under this plan)."""

    count: int | None = 1


@dataclass(frozen=True)
class StaleMarker:
    """Plant a dead replica's advisory leader marker just before a
    service claims cross-replica compile leadership: the ``.lead`` file
    appears next to the cache entry with its mtime aged past the TTL, as
    if another :class:`~repro.service.KernelService` replica crashed
    mid-compile without releasing it.  The claimer must detect the stale
    marker and take leadership over instead of waiting forever.
    ``count`` bounds how many claims are sabotaged (None = all claims
    under this plan)."""

    count: int | None = 1


@dataclass(frozen=True)
class ConnDrop:
    """Abort the TCP connection after ``after_bytes`` of a response
    frame have been written — the wire goes dead mid-response, exactly
    as a crashed proxy, flaky link, or OOM-killed gateway would leave
    it.  The client must *detect* the torn frame (CRC / short read) and
    classify it as a :class:`~repro.service.wire.NetworkError`, never
    accept a partial response as an answer.  ``count`` bounds how many
    responses are torn (None = every response under this plan)."""

    after_bytes: int = 8
    count: int | None = 1


@dataclass(frozen=True)
class SlowWire:
    """Slowloris: the hostile peer drips bytes ``chunk`` at a time with
    ``delay_s`` between chunks.  Driven by the gateway chaos campaign's
    raw-socket client against a live gateway, whose per-read idle
    timeout must reclaim the connection instead of letting one slow
    writer pin a handler forever.  ``complete=True`` drips a *valid*
    frame slowly enough to finish inside the timeout (the gateway must
    tolerate slow-but-honest peers); ``complete=False`` stalls forever
    after the dripped prefix (the gateway must cut the connection)."""

    chunk: int = 1
    delay_s: float = 0.02
    complete: bool = False


@dataclass(frozen=True)
class TruncatedFrame:
    """The hostile peer sends a frame cut short at ``keep`` bytes and
    then closes the connection (``keep=None`` = a seeded-random proper
    prefix).  The gateway must classify the torn frame and drop the
    connection cleanly — no handler leak, no half-served request."""

    keep: int | None = None


@dataclass(frozen=True)
class BatchStorm:
    """A same-shape stampede aimed at the gateway's pre-admission
    batcher: ``waiters`` raw connections send byte-identical compile
    frames inside one batch window, so they must merge into one flight
    group (one admission slot, one compile).  With ``kill_leader`` the
    first connection — the one whose arrival *opened* the group — is
    torn down mid-window; the flush timer is owned by the event loop,
    so the survivors must still receive complete, byte-identical
    response frames and the batch table must end empty (no leaked
    group entry, no double-answered waiter).  Driven by the gateway
    chaos campaign's raw-socket client."""

    waiters: int = 4
    kill_leader: bool = False


@dataclass(frozen=True)
class GarbageFrame:
    """The hostile peer sends bytes that are not a valid frame.
    ``mode`` picks the corruption: ``"random"`` (seeded noise),
    ``"bad-magic"``, ``"bad-crc"`` (valid header, flipped payload CRC),
    or ``"bad-length"`` (adversarial length field far beyond the frame
    limit — must be rejected *before* any allocation).  The gateway
    must answer with a classified error frame where framing allows and
    close the connection, never crash or wedge."""

    mode: str = "random"
    nbytes: int | None = None


def _match(pattern: str, value: str) -> bool:
    return pattern == "*" or pattern == value


#: lazily created once (VMError cannot be imported at module load — the VM
#: imports this module); a single class object keeps trap *types* identical
#: across engines and across repeated installs.
_INJECTED_VM_FAULT: type | None = None


def injected_vm_fault_cls() -> type:
    """The ``InjectedVMFault(VMError, FaultInjected)`` class, created on
    first use and cached."""
    global _INJECTED_VM_FAULT
    if _INJECTED_VM_FAULT is None:
        from .machine.vm import VMError

        class InjectedVMFault(VMError, FaultInjected):
            """A :class:`MemFault` firing (never raised in production)."""

        InjectedVMFault.__module__ = __name__
        InjectedVMFault.__qualname__ = "InjectedVMFault"
        _INJECTED_VM_FAULT = InjectedVMFault
    return _INJECTED_VM_FAULT


class FaultPlan:
    """An immutable, picklable set of faults plus the seed that resolves
    any random positions (bit-flip offsets)."""

    def __init__(self, faults=(), seed: int = 0) -> None:
        self.faults = tuple(faults)
        self.seed = int(seed)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults={list(self.faults)})"

    def __reduce__(self):
        return (FaultPlan, (self.faults, self.seed))

    def _of(self, cls):
        return [f for f in self.faults if isinstance(f, cls)]

    # -- bytecode layer -----------------------------------------------------

    def corrupt(self, data: bytes) -> bytes:
        """Apply the plan's :class:`BitFlip` faults to ``data``."""
        flips = self._of(BitFlip)
        if not flips:
            return data
        rng = random.Random(self.seed)
        out = bytearray(data)
        for f in flips:
            if not out:
                break
            off = f.offset if f.offset is not None else rng.randrange(len(out))
            bit = f.bit if f.bit is not None else rng.randrange(8)
            out[off % len(out)] ^= 1 << (bit % 8)
        return bytes(out)

    # -- JIT layer ----------------------------------------------------------

    def lowering_fails(self, idiom: str, target: str) -> bool:
        return any(
            _match(f.idiom, idiom) and _match(f.target, target)
            for f in self._of(LoweringFault)
        )

    def materialize_fails(self, target: str) -> bool:
        return any(_match(f.target, target) for f in self._of(MaterializeFault))

    # -- VM layer -----------------------------------------------------------

    def make_mem_hook(self):
        """A fresh countdown closure for the plan's first :class:`MemFault`
        (one per install, so repeated runs under one plan re-arm)."""
        mem = self._of(MemFault)
        if not mem:
            return None
        after = max(1, int(mem[0].after))
        repeat = bool(mem[0].repeat)
        state = [0]

        def hook(op: str, array: str) -> None:
            state[0] += 1
            fires = (
                state[0] % after == 0 if repeat else state[0] == after
            )
            if fires:
                raise injected_vm_fault_cls()(
                    f"injected memory fault at access #{state[0]} "
                    f"(op {op}, array {array})"
                )

        return hook

    def misalign(self) -> int | None:
        mis = self._of(MisalignFault)
        return mis[0].misalign if mis else None

    # -- service cache layer ------------------------------------------------

    def make_torn_write_hook(self):
        """A fresh countdown closure for the plan's first
        :class:`CacheTornWrite` (re-armed per install)."""
        return self._make_counted_hook(CacheTornWrite)

    def make_stale_marker_hook(self):
        """A fresh countdown closure for the plan's first
        :class:`StaleMarker` (re-armed per install)."""
        return self._make_counted_hook(StaleMarker)

    # -- gateway wire layer ---------------------------------------------------

    def make_conn_drop_hook(self):
        """A fresh countdown closure for the plan's first
        :class:`ConnDrop` (re-armed per install)."""
        return self._make_counted_hook(ConnDrop)

    def wire_client_fault(self):
        """The plan's hostile-client wire fault
        (:class:`SlowWire`/:class:`TruncatedFrame`/:class:`GarbageFrame`/
        :class:`BatchStorm`), or None.  Read by the gateway chaos
        campaign's raw-socket driver, not by an in-process injection
        point: these faults live on the *peer's* side of the wire."""
        for f in self.faults:
            if isinstance(f, (SlowWire, TruncatedFrame, GarbageFrame,
                              BatchStorm)):
                return f
        return None

    def _make_counted_hook(self, cls):
        found = self._of(cls)
        if not found:
            return None
        fault = found[0]
        state = [0]

        def hook():
            if fault.count is not None and state[0] >= fault.count:
                return None
            state[0] += 1
            return fault

        return hook

    # -- harness layer ------------------------------------------------------

    def worker_fault(self, kernel: str, flow: str):
        """The first :class:`WorkerCrash`/:class:`WorkerStall` matching the
        cell, or None."""
        for f in self.faults:
            if isinstance(f, (WorkerCrash, WorkerStall)) and _match(
                f.kernel, kernel
            ) and _match(f.flow, flow):
                return f
        return None


# -- installation (dynamic extent) --------------------------------------------

#: the currently installed plan (None = all injection points dormant).
_ACTIVE: FaultPlan | None = None

#: memory-access hook consulted by both VM engines at every memory op;
#: kept as a plain module global so the check is one attribute load.
mem_hook = None

#: torn-write hook consulted by the service cache's atomic_write.
torn_write_hook = None

#: stale-marker hook consulted by the cache's cross-replica leader claim.
stale_marker_hook = None

#: connection-drop hook consulted by the gateway's response writer.
conn_drop_hook = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan``; arms fresh memory-fault/torn-write/stale-marker/
    connection-drop countdowns."""
    global _ACTIVE, mem_hook, torn_write_hook, stale_marker_hook
    global conn_drop_hook
    _ACTIVE = plan
    mem_hook = plan.make_mem_hook()
    torn_write_hook = plan.make_torn_write_hook()
    stale_marker_hook = plan.make_stale_marker_hook()
    conn_drop_hook = plan.make_conn_drop_hook()
    return plan


def uninstall() -> None:
    """Remove any installed plan; every injection point goes dormant."""
    global _ACTIVE, mem_hook, torn_write_hook, stale_marker_hook
    global conn_drop_hook
    _ACTIVE = None
    mem_hook = None
    torn_write_hook = None
    stale_marker_hook = None
    conn_drop_hook = None


@contextmanager
def injected(plan: FaultPlan):
    """Install ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE, mem_hook, torn_write_hook, stale_marker_hook
    global conn_drop_hook
    prev = (_ACTIVE, mem_hook, torn_write_hook, stale_marker_hook,
            conn_drop_hook)
    install(plan)
    try:
        yield plan
    finally:
        (_ACTIVE, mem_hook, torn_write_hook, stale_marker_hook,
         conn_drop_hook) = prev


def active_plan() -> FaultPlan | None:
    """The currently installed :class:`FaultPlan`, or None."""
    return _ACTIVE


# -- convenience wrappers used at the injection points ------------------------


def lowering_fails(idiom: str, target: str) -> bool:
    """JIT injection point: should lowering ``idiom`` for ``target`` be
    forced to fail under the active plan?"""
    return _ACTIVE is not None and _ACTIVE.lowering_fails(idiom, target)


def materialize_fails(target: str) -> bool:
    """JIT injection point: should whole-function materialization for
    ``target`` be forced to fail under the active plan?"""
    return _ACTIVE is not None and _ACTIVE.materialize_fails(target)


def corrupt(data: bytes) -> bytes:
    """Bytecode injection point: corrupt ``data`` per the active plan."""
    return data if _ACTIVE is None else _ACTIVE.corrupt(data)


def worker_fault(kernel: str, flow: str):
    """Harness injection point: the crash/stall fault matching this sweep
    cell under the active plan, or None."""
    return None if _ACTIVE is None else _ACTIVE.worker_fault(kernel, flow)


def cache_torn_write():
    """Service-cache injection point: the :class:`CacheTornWrite` that
    should fire on this write under the active plan, or None."""
    return None if torn_write_hook is None else torn_write_hook()


def stale_marker():
    """Leader-marker injection point: the :class:`StaleMarker` that
    should sabotage this cross-replica claim under the active plan, or
    None."""
    return None if stale_marker_hook is None else stale_marker_hook()


def wire_conn_drop():
    """Gateway injection point: the :class:`ConnDrop` that should tear
    this response's connection under the active plan, or None."""
    return None if conn_drop_hook is None else conn_drop_hook()
