"""Vapor SIMD reproduction: auto-vectorize once, run everywhere.

A from-scratch Python implementation of the split-vectorization system of
Nuzman et al. (CGO 2011): an offline auto-vectorizer that emits portable
vectorized bytecode over abstract SIMD idioms, and lightweight online
compilers that materialize it for SSE, AltiVec, NEON, AVX, or scalarize it
— executed on a cycle-cost virtual machine.

Quick start — the one-call facade (see ``docs/api.md``)::

    from repro import compile_and_run

    arts = compile_and_run(open("kernel.c").read(),
                           {"n": 64}, {"x": x, "y": y}, target="neon")
    print(arts.cycles, arts.arrays["y"].read_elements())

or stage by stage with the historical entry points::

    from repro import compile_source, split_config, vectorize_function
    from repro import MonoJIT, VM, ArrayBuffer, get_target

    module = compile_source(open("kernel.c").read())
    bytecode = vectorize_function(module["saxpy"], split_config())
    target = get_target("sse")
    compiled = MonoJIT().compile(bytecode, target)
    result = VM(target).run(compiled.mfunc, {...}, {...})

Tracing and metrics for either path live in :mod:`repro.obs`
(``docs/observability.md``)::

    from repro import obs
    with obs.recording() as ob:
        compile_and_run(...)
    ob.write_trace("trace.jsonl")
"""

from . import obs
from .api import Pipeline, RunArtifacts, compile_and_run
from .bytecode import decode_function, decode_module, encode_function, encode_module
from .frontend import compile_source
from .harness import FlowRunner, figure5, figure6, table3
from .jit import MonoJIT, NativeBackend, OptimizingJIT, specialize_scalars
from .kernels import all_kernels, get_kernel, kernel_names
from .machine import VM, ArrayBuffer, analyze_loop_throughput
from .targets import ALTIVEC, AVX, NEON, SCALAR, SSE, TARGETS, get_target
from .vectorizer import native_config, split_config, vectorize_function, vectorize_module

__version__ = "1.0.0"

__all__ = [
    "Pipeline",
    "RunArtifacts",
    "compile_and_run",
    "obs",
    "compile_source",
    "vectorize_function",
    "vectorize_module",
    "split_config",
    "native_config",
    "encode_function",
    "decode_function",
    "encode_module",
    "decode_module",
    "MonoJIT",
    "OptimizingJIT",
    "NativeBackend",
    "specialize_scalars",
    "VM",
    "ArrayBuffer",
    "analyze_loop_throughput",
    "get_target",
    "TARGETS",
    "SSE",
    "ALTIVEC",
    "NEON",
    "AVX",
    "SCALAR",
    "all_kernels",
    "get_kernel",
    "kernel_names",
    "FlowRunner",
    "figure5",
    "figure6",
    "table3",
    "__version__",
]
