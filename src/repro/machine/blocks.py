"""Shared basic-block machinery for the translating VM engines.

Both the threaded-code engine (:mod:`repro.machine.threaded`) and the
source-generating engine (:mod:`repro.machine.codegen`) translate an
:class:`~repro.machine.mir.MFunction` block-wise: partition the flat
instruction stream into basic blocks, pre-aggregate each block's cycle
cost (including the x87 scalar-FP surcharge) and per-op counts, and then
charge one precomputed sum per block at run time.  Keeping the partition
and the cost aggregation in one module is what makes the two engines'
*accounting* identical by construction — the per-block sums add exactly
the terms the reference interpreter adds, and every cost is a small
dyadic rational (a multiple of 0.5), so float addition is exact and
re-association cannot change the total.
"""

from __future__ import annotations

from collections import Counter

from ..ir.types import ScalarType
from ..targets.base import X87_FP_EXTRA
from .vm import _FP_SCALAR_OPS

__all__ = [
    "TERMINATORS",
    "partition",
    "instr_cost",
    "block_accounting",
    "loop_depths",
]

#: control-transfer opcodes that end a basic block.
TERMINATORS = ("br", "brtrue", "brfalse", "ret")


def partition(instrs) -> tuple[list[int], dict[int, int]]:
    """Partition a flat instruction list into basic blocks.

    Leaders are the entry point, every ``label``, and every instruction
    following a terminator.  Returns ``(starts, block_at)`` where
    ``starts`` is the sorted list of leader indices and ``block_at`` maps
    a leader's instruction index to its block index.
    """
    n = len(instrs)
    leaders = {0}
    for i, ins in enumerate(instrs):
        if ins.op == "label":
            leaders.add(i)
        elif ins.op in TERMINATORS:
            leaders.add(i + 1)
    leaders.discard(n)
    starts = sorted(leaders)
    return starts, {s: bi for bi, s in enumerate(starts)}


def instr_cost(ins, cost, x87: bool) -> float:
    """One instruction's cycle cost, including the x87 FP surcharge.

    The surcharge depends only on static instruction properties (opcode +
    immediate type), which is why both translating engines can fold it
    into per-block sums at translate time.
    """
    c = cost.get(ins.op)
    if x87 and ins.op in _FP_SCALAR_OPS:
        t = ins.imm.get("type")
        if isinstance(t, ScalarType) and t.is_float:
            c += X87_FP_EXTRA
    return c


def block_accounting(body, cost, x87: bool) -> tuple[float, dict[str, int]]:
    """Pre-aggregate one block's ``(cycle_sum, per_op_counts)``."""
    cycles = 0.0
    op_counts: Counter[str] = Counter()
    for ins in body:
        cycles += instr_cost(ins, cost, x87)
        op_counts[ins.op] += 1
    return cycles, dict(op_counts)


def loop_depths(starts, instrs, labels, block_at) -> list[int]:
    """Static loop depth per block, from backward-branch ranges.

    Every branch from block ``b`` back to an earlier (or the same) block
    ``h`` marks the layout range ``[h, b]`` as one loop level.  The MIR
    produced by :mod:`repro.machine.flatten` is fully structured, so
    layout ranges coincide with loop bodies; the codegen engine uses the
    depths only to order its dispatch chain (hot blocks first), so an
    imprecise depth can never affect correctness.
    """
    n = len(instrs)
    depths = [0] * len(starts)
    for bi, s in enumerate(starts):
        e = starts[bi + 1] if bi + 1 < len(starts) else n
        term = instrs[e - 1]
        if term.op in ("br", "brtrue", "brfalse"):
            tk = block_at[labels[term.imm["label"]]]
            if tk <= bi:
                for j in range(tk, bi + 1):
                    depths[j] += 1
    return depths
