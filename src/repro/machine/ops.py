"""Machine-dialect structured IR operations.

The online compiler's *materialization* stage (jit/materialize.py) rewrites
split-layer idioms into these target-legal operations — each has an exact
MIR counterpart — while the structure (loops, ifs) is still intact.  The
flattener then performs the purely mechanical structured->flat translation.

Memory operations here carry an *element index* value (index of the first
lane); the flattener emits the byte-address arithmetic, which is where
addressing-mode quality differences between online compilers show up.
"""

from __future__ import annotations

from ..ir.instructions import Instr
from ..ir.types import I32, I64, ScalarType, VectorType
from ..ir.values import ArrayRef, Value

__all__ = [
    "MVLoad",
    "MVStore",
    "MLvsr",
    "MVPerm",
    "MVSplat",
    "MVAffine",
    "MVConst",
    "MVInsert0",
    "MVReduce",
    "MVDot",
    "MVWidenMult",
    "MVPack",
    "MVUnpack",
    "MVCvt",
    "MVExtract",
    "MVInterleave",
    "MArrOverlap",
    "MArrAligned",
    "MLibCall",
]


class _MMem(Instr):
    def __init__(self, result_type, array: ArrayRef, index: Value, extra, name=""):
        super().__init__(result_type, [array, index, *extra], name)

    @property
    def array(self) -> ArrayRef:
        return self._operands[0]  # type: ignore[return-value]

    @property
    def index(self) -> Value:
        return self._operands[1]


class MVLoad(_MMem):
    """Vector load; ``mode`` is 'a' (aligned, traps), 'u' (misaligned ok),
    or 'fa' (floor-aligned, AltiVec align_load)."""

    def __init__(self, vtype: VectorType, array, index, mode: str, name=""):
        super().__init__(vtype, array, index, [], name)
        self.mode = mode

    mnemonic = property(lambda self: f"mvload_{self.mode}")  # type: ignore[assignment]

    def attrs(self):
        return {"mode": self.mode}


class MVStore(_MMem):
    """Vector store; ``mode`` is 'a' or 'u'."""

    def __init__(self, array, index, value: Value, mode: str, name=""):
        super().__init__(value.type, array, index, [value], name)
        self.mode = mode

    mnemonic = property(lambda self: f"mvstore_{self.mode}")  # type: ignore[assignment]

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def value(self) -> Value:
        return self._operands[2]

    def attrs(self):
        return {"mode": self.mode}


class MLvsr(_MMem):
    """Realignment token (byte shift) from a runtime address."""

    mnemonic = "mlvsr"

    def __init__(self, array, index, name=""):
        super().__init__(I64, array, index, [], name)


class MVPerm(Instr):
    """Explicit realignment: select VS bytes from concat(v1,v2) at token."""

    mnemonic = "mvperm"

    def __init__(self, v1: Value, v2: Value, token: Value, name=""):
        super().__init__(v1.type, [v1, v2, token], name)


class MVSplat(Instr):
    """Broadcast a scalar into all lanes."""

    mnemonic = "mvsplat"

    def __init__(self, vtype: VectorType, scalar: Value, name=""):
        super().__init__(vtype, [scalar], name)


class MVAffine(Instr):
    """(base, base+inc, base+2*inc, ...) — init_affine materialized."""

    mnemonic = "mvaffine"

    def __init__(self, vtype: VectorType, base: Value, inc: Value, name=""):
        super().__init__(vtype, [base, inc], name)


class MVConst(Instr):
    """A compile-time lane pattern, tiled to the vector width."""

    mnemonic = "mvconst"

    def __init__(self, vtype: VectorType, values: tuple, name=""):
        super().__init__(vtype, [], name)
        self.values = tuple(values)

    def attrs(self):
        return {"values": self.values}


class MVInsert0(Instr):
    """Insert a scalar into lane 0 of a vector (init_reduc materialized:
    splat the identity, then movss-style insert of the incoming value)."""

    mnemonic = "mvinsert0"

    def __init__(self, vec: Value, scalar: Value, name=""):
        super().__init__(vec.type, [vec, scalar], name)


class MVReduce(Instr):
    """Horizontal reduction to a scalar."""

    mnemonic = "mvreduce"

    def __init__(self, kind: str, vec: Value, name=""):
        vt = vec.type
        super().__init__(vt.elem, [vec], name)
        self.kind = kind

    def attrs(self):
        return {"kind": self.kind}


class MVDot(Instr):
    """Widening multiply + pairwise accumulate (pmaddwd-style)."""

    mnemonic = "mvdot"

    def __init__(self, v1: Value, v2: Value, acc: Value, name=""):
        super().__init__(acc.type, [v1, v2, acc], name)


class MVWidenMult(Instr):
    """Widening multiply of one input half (widen_mult materialized)."""

    mnemonic = "mvwidenmult"

    def __init__(self, result_type: VectorType, half: str, v1, v2, name=""):
        super().__init__(result_type, [v1, v2], name)
        self.half = half

    def attrs(self):
        return {"half": self.half}


class MVPack(Instr):
    """Demote-and-concatenate two vectors (pack materialized)."""

    mnemonic = "mvpack"

    def __init__(self, result_type: VectorType, v1, v2, name=""):
        super().__init__(result_type, [v1, v2], name)


class MVUnpack(Instr):
    """Promote one half of a vector (unpack_hi/lo materialized)."""

    mnemonic = "mvunpack"

    def __init__(self, result_type: VectorType, half: str, v1, name=""):
        super().__init__(result_type, [v1], name)
        self.half = half

    def attrs(self):
        return {"half": self.half}


class MVCvt(Instr):
    """Same-width int<->float lane conversion (cvt_* materialized)."""

    mnemonic = "mvcvt"

    def __init__(self, result_type: VectorType, v1, name=""):
        super().__init__(result_type, [v1], name)


class MVExtract(Instr):
    """Strided lane extraction across several registers."""

    mnemonic = "mvextract"

    def __init__(self, stride: int, offset: int, vecs: list[Value], name=""):
        super().__init__(vecs[0].type, list(vecs), name)
        self.stride = stride
        self.offset = offset

    def attrs(self):
        return {"stride": self.stride, "offset": self.offset}


class MVInterleave(Instr):
    """Interleave the hi/lo halves of two vectors (strided stores)."""

    mnemonic = "mvinterleave"

    def __init__(self, half: str, v1, v2, name=""):
        super().__init__(v1.type, [v1, v2], name)
        self.half = half

    def attrs(self):
        return {"half": self.half}


class MArrOverlap(Instr):
    """Runtime overlap check between two arrays (no_alias guard)."""

    mnemonic = "marr_overlap"

    def __init__(self, a1: ArrayRef, a2: ArrayRef, name=""):
        from ..ir.types import BOOL

        super().__init__(BOOL, [a1, a2], name)


class MArrAligned(Instr):
    """Runtime base-alignment check (unfoldable bases_aligned guard)."""

    mnemonic = "marr_aligned"

    def __init__(self, array: ArrayRef, align: int, name=""):
        from ..ir.types import BOOL

        super().__init__(BOOL, [array], name)
        self.align = align

    def attrs(self):
        return {"align": self.align}


class MLibCall(Instr):
    """Library-emulated vector idiom (the immature-backend fallback)."""

    mnemonic = "mlibcall"

    def __init__(self, result_type, sem: str, operands: list[Value], imm: dict, name=""):
        super().__init__(result_type, list(operands), name)
        self.sem = sem
        self.imm = dict(imm)

    def attrs(self):
        return {"sem": self.sem, **self.imm}
