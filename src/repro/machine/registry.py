"""Pluggable execution-engine registry.

Historically the repo hard-coded its two engines: ``repro.api`` kept a
frozen ``ENGINES`` tuple and ``execute_phase`` carried a literal
``if engine == "threaded"`` branch.  Adding the third engine (the
source-generating :mod:`repro.machine.codegen`) turned that into an API
redesign: engines now live in this registry, and every dispatch site —
:func:`repro.api.resolve_engine` / :func:`repro.api.execute_phase`,
:class:`repro.api.Pipeline`, :class:`repro.harness.FlowRunner`, the CLI's
``--engine`` choices — derives from it.  Registering a new engine makes
it selectable end-to-end without touching any of those call sites::

    from repro.machine.registry import register_engine

    register_engine(
        "tracing",
        translate=my_translate,        # optional (cached per kernel)
        run=my_run,                    # required
        description="reference + per-op trace",
    )

The engine contract
-------------------

``run(ck, scalar_args, arrays, *, count_ops=False, max_instructions=None)``
    Execute compiled kernel ``ck`` (a
    :class:`~repro.jit.compilers.CompiledKernel`) and return a
    :class:`~repro.machine.vm.RunResult`.  This is the only required
    callable.  Engines must be *bit-identical* to the reference
    interpreter on values, cycles, instruction counts, op counts, and
    traps — the differential parity suite (``tests/test_threaded_vm.py``)
    is parametrized over every registered engine and enforces exactly
    that.

``translate(mfunc, target, count_ops=False)``
    Optional one-time translation (pre-decoding, source generation).
    When present, :meth:`CompiledKernel.translated
    <repro.jit.compilers.CompiledKernel.translated>` caches its result
    per ``(engine, count_ops)`` and times it into the
    ``vm.translate_seconds`` metric.  The returned object must expose
    ``run(scalar_args, arrays, max_instructions=...) -> RunResult``.

Names are looked up at call time, so registration order never matters;
the built-in engines below register lazily (importing this module does
not import numpy-heavy engine modules until an engine is actually used).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "Engine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "DEFAULT_ENGINE",
]

#: the engine every entry point defaults to.
DEFAULT_ENGINE = "threaded"


@dataclass(frozen=True)
class Engine:
    """One registered execution engine (see the module docstring for the
    ``run`` / ``translate`` contract)."""

    name: str
    run: Callable
    translate: Callable | None = None
    description: str = ""


#: name -> Engine, in registration order (which fixes CLI choice order).
_REGISTRY: dict[str, Engine] = {}


def register_engine(
    name: str,
    translate: Callable | None = None,
    run: Callable | None = None,
    *,
    description: str = "",
    replace: bool = False,
) -> Engine:
    """Register an execution engine under ``name``.

    ``run`` is required; ``translate`` is optional (see the module
    docstring for both signatures).  Re-registering an existing name
    raises unless ``replace=True`` (so typos cannot silently shadow a
    built-in engine).  Returns the :class:`Engine` record.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"engine name must be a non-empty string: {name!r}")
    if run is None:
        raise ValueError(f"engine {name!r} needs a run callable")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered (pass replace=True "
            f"to override)"
        )
    engine = Engine(
        name=name, run=run, translate=translate, description=description
    )
    _REGISTRY[name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove a registered engine (tests use this to clean up toys)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> Engine:
    """Look up an engine by name; unknown names raise ``ValueError``."""
    engine = _REGISTRY.get(name)
    if engine is None:
        raise ValueError(
            f"unknown engine {name!r}; one of {', '.join(_REGISTRY)}"
        )
    return engine


def engine_names() -> tuple[str, ...]:
    """All registered engine names, in registration order."""
    return tuple(_REGISTRY)


# -- built-in engines ---------------------------------------------------------
#
# The closures import lazily so `import repro.machine.registry` stays
# light; the first *use* of an engine pays its module import.


def _run_threaded(ck, scalar_args, arrays, *, count_ops=False,
                  max_instructions=None):
    code = ck.translated("threaded", count_ops=count_ops)
    if max_instructions is None:
        return code.run(scalar_args, arrays)
    return code.run(scalar_args, arrays, max_instructions)


def _translate_threaded(mfunc, target, count_ops=False):
    from .threaded import translate

    return translate(mfunc, target, count_ops)


def _run_codegen(ck, scalar_args, arrays, *, count_ops=False,
                 max_instructions=None):
    code = ck.translated("codegen", count_ops=count_ops)
    if max_instructions is None:
        return code.run(scalar_args, arrays)
    return code.run(scalar_args, arrays, max_instructions)


def _translate_codegen(mfunc, target, count_ops=False):
    from .codegen import translate

    return translate(mfunc, target, count_ops)


def _run_reference(ck, scalar_args, arrays, *, count_ops=False,
                   max_instructions=None):
    from .vm import VM

    if max_instructions is None:
        vm = VM(ck.target)
    else:
        vm = VM(ck.target, max_instructions)
    return vm.run(ck.mfunc, scalar_args, arrays, count_ops=count_ops)


register_engine(
    "threaded",
    translate=_translate_threaded,
    run=_run_threaded,
    description="pre-decoded closure dispatch, block-level accounting",
)
register_engine(
    "codegen",
    translate=_translate_codegen,
    run=_run_codegen,
    description="MIR->Python superinstruction blocks + batched idioms",
)
register_engine(
    "reference",
    run=_run_reference,
    description="decode-per-instruction reference interpreter",
)
