"""The cycle-cost virtual machine (reference interpreter).

Executes :class:`~repro.machine.mir.MFunction` code against
:class:`~repro.machine.memory.ArrayBuffer` memory, charging every
instruction its target-specific cycle cost.  This is the stand-in for the
paper's physical Core2 / G5 / Cortex-A8 machines: absolute cycle counts are
synthetic, but the *ratios* between flows (scalar vs vector, split vs
native) — which is all the paper's figures report — are preserved by
construction, because both flows execute on the same cost model.

Alignment is enforced, not assumed: an aligned vector access to a
misaligned address raises :class:`VMError`, so a compiler bug that would
fault on AltiVec faults here too.

This module is the *reference* engine: a deliberately simple decode-per-
instruction interpreter that doubles as the executable specification of
the opcode set.  The production-speed engine lives in
:mod:`repro.machine.threaded`; it pre-decodes MIR into specialized Python
closures and must stay bit-identical to this interpreter (enforced by
``tests/test_threaded_vm.py``).  The single-source op semantics both
engines share live here (``_BIN_FUNCS``/``_UN_FUNCS``/``_CMP``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .. import faults
from ..errors import ReproError
from ..ir.types import BOOL, ScalarType
from ..targets.base import X87_FP_EXTRA, Target
from .memory import ArrayBuffer
from .mir import MFunction, MInstr

__all__ = ["VM", "VMError", "RunResult"]

_SCALAR_BIN = {
    "add", "sub", "mul", "div", "mod", "min", "max",
    "and", "or", "xor", "shl", "shr",
}
_SCALAR_UN = {"neg", "abs", "not", "sqrt"}
_VECTOR_BIN = {
    "vadd", "vsub", "vmul", "vdiv", "vmod", "vmin", "vmax",
    "vand", "vor", "vxor", "vshl", "vshr",
}
_VECTOR_UN = {"vneg", "vabs", "vnot", "vsqrt"}
_FP_SCALAR_OPS = _SCALAR_BIN | _SCALAR_UN | {"cmp", "cvt", "select", "mov"}


class VMError(ReproError):
    """Raised on alignment traps, unbound arrays, or runaway execution."""


@dataclass
class RunResult:
    """Outcome of one kernel execution."""

    value: object
    cycles: float
    instructions: int
    op_counts: dict[str, int] = field(default_factory=dict)


# -- shared op semantics ------------------------------------------------------
#
# One function per canonical opcode, shared by the reference interpreter
# (via :func:`_binop`/:func:`_unop`) and by the threaded engine's closure
# factories (:mod:`repro.machine.threaded`).  Keeping a single source of
# truth is what makes the two engines bit-identical by construction.


def _trunc_div(a, b, dtype: np.dtype):
    """C-style truncating integer division (shared by div and mod)."""
    q = np.floor_divide(a, b)
    r = a - q * b
    fix = (r != 0) & ((a < 0) != (b < 0))
    return (q + fix).astype(dtype)


def _div(a, b, dtype: np.dtype):
    if dtype.kind == "f":
        return a / b
    return _trunc_div(a, b, dtype)


def _mod(a, b, dtype: np.dtype):
    # One truncating division, shared with the div path (no re-dispatch).
    q = _div(a, b, dtype)
    return (a - q * b).astype(dtype)


def _shl(a, b, dtype: np.dtype):
    return (a << (b & (dtype.itemsize * 8 - 1))).astype(dtype)


def _shr(a, b, dtype: np.dtype):
    return (a >> (b & (dtype.itemsize * 8 - 1))).astype(dtype)


#: canonical binary op name -> fn(a, b, dtype); vector ops use the same
#: entry with the leading "v" stripped.
_BIN_FUNCS = {
    "add": lambda a, b, dt: a + b,
    "sub": lambda a, b, dt: a - b,
    "mul": lambda a, b, dt: a * b,
    "div": _div,
    "mod": _mod,
    "min": lambda a, b, dt: np.minimum(a, b),
    "max": lambda a, b, dt: np.maximum(a, b),
    "and": lambda a, b, dt: a & b,
    "or": lambda a, b, dt: a | b,
    "xor": lambda a, b, dt: a ^ b,
    "shl": _shl,
    "shr": _shr,
}

#: canonical unary op name -> fn(a, dtype).
_UN_FUNCS = {
    "neg": lambda a, dt: (-a).astype(dt) if dt.kind != "f" else -a,
    "abs": lambda a, dt: np.abs(a).astype(dt),
    "not": lambda a, dt: ~a,
    "sqrt": lambda a, dt: np.sqrt(a).astype(dt),
}


def _canon(op: str) -> str:
    """Map a (possibly vector) mnemonic to its canonical scalar name."""
    if op in _BIN_FUNCS or op in _UN_FUNCS:
        return op
    return op[1:]


def _binop(op: str, a, b, dtype: np.dtype):
    fn = _BIN_FUNCS.get(op) or _BIN_FUNCS.get(op[1:])
    if fn is None:
        raise VMError(f"unknown binary op {op}")
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        return fn(a, b, dtype)


def _unop(op: str, a, dtype: np.dtype):
    fn = _UN_FUNCS.get(op) or _UN_FUNCS.get(op[1:])
    if fn is None:
        raise VMError(f"unknown unary op {op}")
    with np.errstate(over="ignore", invalid="ignore"):
        return fn(a, dtype)


_CMP = {
    "eq": np.equal, "ne": np.not_equal, "lt": np.less,
    "le": np.less_equal, "gt": np.greater, "ge": np.greater_equal,
}


class VM:
    """Executes machine code for one target (reference interpreter)."""

    def __init__(self, target: Target, max_instructions: int = 500_000_000):
        self.target = target
        self.max_instructions = max_instructions

    def run(
        self,
        mfunc: MFunction,
        scalar_args: dict[str, object] | None = None,
        arrays: dict[str, ArrayBuffer] | None = None,
        count_ops: bool = False,
    ) -> RunResult:
        """Execute ``mfunc``; returns the result with cycle accounting."""
        scalar_args = scalar_args or {}
        arrays = arrays or {}
        for slot in mfunc.arrays:
            if slot.name not in arrays:
                raise VMError(f"array parameter {slot.name!r} not bound")
        regs: dict[int, object] = {}
        for name, type_, reg in mfunc.scalar_params:
            if name not in scalar_args:
                raise VMError(f"scalar parameter {name!r} not bound")
            regs[reg.id] = type_.numpy_dtype.type(scalar_args[name])

        labels = mfunc.labels()
        instrs = mfunc.instrs
        cost = self.target.cost
        x87 = bool(mfunc.meta.get("x87"))
        cycles = 0.0
        executed = 0
        # Accounting beyond cycles (per-op counts, the x87 FP surcharge) is
        # hoisted behind a single precomputed flag so the common fast path
        # (count_ops=False, non-x87 code) pays one local-bool test per
        # instruction instead of two dict/set probes.
        op_counts: Counter[str] = Counter()
        slow_account = count_ops or x87
        spills: dict[int, object] = {}
        pc = 0
        n = len(instrs)
        ret_value = None

        while pc < n:
            ins = instrs[pc]
            pc += 1
            executed += 1
            if executed > self.max_instructions:
                raise VMError(
                    f"instruction budget exceeded in {mfunc.name} "
                    f"({self.max_instructions})"
                )
            op = ins.op
            cycles += cost.get(op)
            if slow_account:
                if count_ops:
                    op_counts[op] += 1
                if x87 and op in _FP_SCALAR_OPS:
                    t = ins.imm.get("type")
                    if isinstance(t, ScalarType) and t.is_float:
                        cycles += X87_FP_EXTRA
            if op == "label":
                continue

            if op == "const":
                t: ScalarType = ins.imm["type"]
                regs[ins.dst.id] = t.numpy_dtype.type(ins.imm["value"])
            elif op == "mov":
                regs[ins.dst.id] = regs[ins.srcs[0].id]
            elif op == "lea":
                base = int(regs[ins.srcs[0].id])
                regs[ins.dst.id] = np.int64(
                    base * ins.imm.get("scale", 1) + ins.imm.get("offset", 0)
                )
            elif op in _SCALAR_BIN:
                t = ins.imm["type"]
                dt = t.numpy_dtype
                a = dt.type(regs[ins.srcs[0].id])
                b = dt.type(regs[ins.srcs[1].id])
                regs[ins.dst.id] = dt.type(_binop(op, a, b, dt))
            elif op in _SCALAR_UN:
                t = ins.imm["type"]
                dt = t.numpy_dtype
                regs[ins.dst.id] = dt.type(_unop(op, dt.type(regs[ins.srcs[0].id]), dt))
            elif op == "cmp":
                a = regs[ins.srcs[0].id]
                b = regs[ins.srcs[1].id]
                regs[ins.dst.id] = np.int8(_CMP[ins.imm["op"]](a, b))
            elif op == "select":
                c = regs[ins.srcs[0].id]
                regs[ins.dst.id] = (
                    regs[ins.srcs[1].id] if c else regs[ins.srcs[2].id]
                )
            elif op == "cvt":
                to: ScalarType = ins.imm["to"]
                v = regs[ins.srcs[0].id]
                if to.is_float:
                    regs[ins.dst.id] = to.numpy_dtype.type(v)
                else:
                    # C truncation toward zero for float sources; wrap ints.
                    if isinstance(v, (np.floating, float)):
                        v = int(v)
                    regs[ins.dst.id] = to.numpy_dtype.type(np.int64(v))
            elif op == "load":
                if faults.mem_hook is not None:
                    faults.mem_hook("load", ins.imm["array"])
                buf = arrays[ins.imm["array"]]
                t = ins.imm["type"]
                off = int(regs[ins.srcs[0].id])
                regs[ins.dst.id] = buf.load_scalar(off, t.numpy_dtype)
            elif op == "store":
                if faults.mem_hook is not None:
                    faults.mem_hook("store", ins.imm["array"])
                buf = arrays[ins.imm["array"]]
                t = ins.imm["type"]
                off = int(regs[ins.srcs[0].id])
                buf.store_scalar(off, regs[ins.srcs[1].id], t.numpy_dtype)
            elif op == "br":
                pc = labels[ins.imm["label"]]
            elif op == "brtrue":
                if regs[ins.srcs[0].id]:
                    pc = labels[ins.imm["label"]]
            elif op == "brfalse":
                if not regs[ins.srcs[0].id]:
                    pc = labels[ins.imm["label"]]
            elif op == "ret":
                ret_value = regs[ins.srcs[0].id] if ins.srcs else None
                break
            elif op == "spill_st":
                spills[ins.imm["slot"]] = regs[ins.srcs[0].id]
            elif op == "spill_ld":
                regs[ins.dst.id] = spills[ins.imm["slot"]]
            elif op == "arr_overlap":
                a = arrays[ins.imm["a1"]]
                b = arrays[ins.imm["a2"]]
                regs[ins.dst.id] = np.int8(a.overlaps(b))
            elif op == "arr_aligned":
                buf = arrays[ins.imm["array"]]
                regs[ins.dst.id] = np.int8(
                    buf.address_of(0) % ins.imm["align"] == 0
                )
            else:
                self._exec_vector(ins, regs, arrays)

        return RunResult(ret_value, cycles, executed, op_counts)

    # -- vector instruction semantics --------------------------------------

    def _exec_vector(self, ins: MInstr, regs: dict, arrays: dict) -> None:
        op = ins.op
        vs = self.target.vector_size
        if op == "vconst":
            elem: ScalarType = ins.imm["elem"]
            lanes: int = ins.imm["lanes"]
            values = ins.imm["values"]
            reps = -(-lanes // len(values))
            regs[ins.dst.id] = np.tile(
                np.asarray(values, dtype=elem.numpy_dtype), reps
            )[:lanes]
        elif op == "vsplat":
            elem, lanes = ins.imm["elem"], ins.imm["lanes"]
            regs[ins.dst.id] = np.full(
                lanes, regs[ins.srcs[0].id], dtype=elem.numpy_dtype
            )
        elif op == "vaffine":
            elem, lanes = ins.imm["elem"], ins.imm["lanes"]
            base = regs[ins.srcs[0].id]
            inc = regs[ins.srcs[1].id]
            dt = elem.numpy_dtype
            with np.errstate(over="ignore"):
                regs[ins.dst.id] = (
                    dt.type(base) + np.arange(lanes, dtype=dt) * dt.type(inc)
                ).astype(dt)
        elif op in ("vload_a", "vload_u", "vload_fa"):
            if faults.mem_hook is not None:
                faults.mem_hook(op, ins.imm["array"])
            buf = arrays[ins.imm["array"]]
            elem, lanes = ins.imm["elem"], ins.imm["lanes"]
            off = int(regs[ins.srcs[0].id])
            if op == "vload_a":
                if buf.address_of(off) % vs != 0:
                    raise VMError(
                        f"aligned vector load from misaligned address "
                        f"(array {ins.imm['array']}, offset {off}, "
                        f"addr%{vs}={buf.address_of(off) % vs})"
                    )
            elif op == "vload_fa":
                abs_addr = buf.address_of(off)
                off -= abs_addr % vs
            regs[ins.dst.id] = buf.load_vector(off, elem.numpy_dtype, lanes)
        elif op in ("vstore_a", "vstore_u"):
            if faults.mem_hook is not None:
                faults.mem_hook(op, ins.imm["array"])
            buf = arrays[ins.imm["array"]]
            off = int(regs[ins.srcs[0].id])
            if op == "vstore_a" and buf.address_of(off) % vs != 0:
                raise VMError(
                    f"aligned vector store to misaligned address "
                    f"(array {ins.imm['array']}, offset {off})"
                )
            buf.store_vector(off, regs[ins.srcs[1].id])
        elif op == "lvsr":
            buf = arrays[ins.imm["array"]]
            off = int(regs[ins.srcs[0].id])
            regs[ins.dst.id] = np.int64(buf.address_of(off) % vs)
        elif op == "vperm":
            v1 = regs[ins.srcs[0].id]
            v2 = regs[ins.srcs[1].id]
            shift = int(regs[ins.srcs[2].id])
            raw = np.concatenate(
                [np.ascontiguousarray(v1).view(np.uint8),
                 np.ascontiguousarray(v2).view(np.uint8)]
            )
            nbytes = np.ascontiguousarray(v1).view(np.uint8).size
            regs[ins.dst.id] = (
                raw[shift : shift + nbytes].view(v1.dtype).copy()
            )
        elif op in _VECTOR_BIN:
            elem = ins.imm["elem"]
            a, b = regs[ins.srcs[0].id], regs[ins.srcs[1].id]
            regs[ins.dst.id] = np.asarray(
                _binop(op, a, b, elem.numpy_dtype), dtype=elem.numpy_dtype
            )
        elif op in _VECTOR_UN:
            elem = ins.imm["elem"]
            regs[ins.dst.id] = np.asarray(
                _unop(op, regs[ins.srcs[0].id], elem.numpy_dtype),
                dtype=elem.numpy_dtype,
            )
        elif op == "vcmp":
            a, b = regs[ins.srcs[0].id], regs[ins.srcs[1].id]
            regs[ins.dst.id] = _CMP[ins.imm["op"]](a, b).astype(np.int8)
        elif op == "vselect":
            c = regs[ins.srcs[0].id]
            regs[ins.dst.id] = np.where(
                c.astype(bool), regs[ins.srcs[1].id], regs[ins.srcs[2].id]
            )
        elif op == "vcvt":
            to: ScalarType = ins.imm["to"]
            v = regs[ins.srcs[0].id]
            if to.is_float:
                regs[ins.dst.id] = v.astype(to.numpy_dtype)
            else:
                with np.errstate(invalid="ignore"):
                    regs[ins.dst.id] = np.trunc(v).astype(to.numpy_dtype)
        elif op == "vinsert0":
            v = regs[ins.srcs[0].id].copy()
            v[0] = v.dtype.type(regs[ins.srcs[1].id])
            regs[ins.dst.id] = v
        elif op == "vreduce":
            v = regs[ins.srcs[0].id]
            kind = ins.imm["kind"]
            if kind == "plus":
                with np.errstate(over="ignore"):
                    regs[ins.dst.id] = v.dtype.type(np.add.reduce(v))
            elif kind == "min":
                regs[ins.dst.id] = v.min()
            else:
                regs[ins.dst.id] = v.max()
        elif op == "vdot":
            elem = ins.imm["elem"]  # the *widened* accumulator element
            a = regs[ins.srcs[0].id]
            b = regs[ins.srcs[1].id]
            acc = regs[ins.srcs[2].id]
            wide = a.astype(elem.numpy_dtype) * b.astype(elem.numpy_dtype)
            with np.errstate(over="ignore"):
                pair = wide.reshape(-1, 2).sum(axis=1, dtype=elem.numpy_dtype)
                regs[ins.dst.id] = (acc + pair).astype(elem.numpy_dtype)
        elif op == "vwidenmul":
            elem = ins.imm["elem"]  # widened element type
            half = ins.imm["half"]
            a = regs[ins.srcs[0].id]
            b = regs[ins.srcs[1].id]
            m = a.size
            sl = slice(0, m // 2) if half == "lo" else slice(m // 2, m)
            with np.errstate(over="ignore"):
                regs[ins.dst.id] = a[sl].astype(elem.numpy_dtype) * b[
                    sl
                ].astype(elem.numpy_dtype)
        elif op == "vpack":
            elem = ins.imm["elem"]  # narrowed element type
            a = regs[ins.srcs[0].id]
            b = regs[ins.srcs[1].id]
            regs[ins.dst.id] = np.concatenate([a, b]).astype(elem.numpy_dtype)
        elif op == "vunpack":
            elem = ins.imm["elem"]  # widened element type
            half = ins.imm["half"]
            a = regs[ins.srcs[0].id]
            m = a.size
            sl = slice(0, m // 2) if half == "lo" else slice(m // 2, m)
            regs[ins.dst.id] = a[sl].astype(elem.numpy_dtype)
        elif op == "vextract":
            stride = ins.imm["stride"]
            offset = ins.imm["offset"]
            parts = np.concatenate([regs[s.id] for s in ins.srcs])
            regs[ins.dst.id] = parts[offset::stride].copy()
        elif op == "vinterleave":
            half = ins.imm["half"]
            a = regs[ins.srcs[0].id]
            b = regs[ins.srcs[1].id]
            m = a.size
            sl = slice(0, m // 2) if half == "lo" else slice(m // 2, m)
            out = np.empty(m, dtype=a.dtype)
            out[0::2] = a[sl]
            out[1::2] = b[sl]
            regs[ins.dst.id] = out
        elif op == "call_lib":
            # Library fallback: same semantics as the idiom it emulates,
            # at call_lib cost (charged by the main loop already).
            sem = ins.imm["sem"]
            inner = MInstr(sem, ins.dst, ins.srcs, ins.imm)
            self._exec_vector(inner, regs, arrays)
        else:
            raise VMError(f"unknown opcode {op!r}")
