"""Register allocation as spill-cost modelling.

The VM runs on virtual registers, so allocation here does not rename — it
*injects spill code* wherever a real allocator of the modelled quality would
have gone to memory.  Two models:

* :func:`allocate_local` — Mono's allocator circa the paper: no global
  allocation, so any value live across a basic-block boundary lives in
  memory, except for a small set of pinned loop variables.  On x86's six
  GPRs this spills heavily; on PowerPC's 32 much less — reproducing the
  Figure 5 asymmetry ("Lack of global register allocation affects PowerPC
  code as well, but to a lesser degree").
* :func:`allocate_linear_scan` — the gcc4cli/native-quality allocator:
  values stay in registers unless true pressure exceeds the file.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..targets.base import Target
from .mir import FPR, GPR, VEC, MFunction, MInstr, VReg

__all__ = ["allocate_local", "allocate_linear_scan", "AllocStats"]

_BOUNDARY_OPS = {"label", "br", "brtrue", "brfalse"}
_slot_ids = itertools.count()


@dataclass
class AllocStats:
    """Spill accounting, used by tests and compile-time experiments."""

    spilled_values: int = 0
    spill_loads: int = 0
    spill_stores: int = 0


def _file_size(target: Target, rclass: str) -> int:
    return {GPR: target.gpr_count, FPR: target.fpr_count, VEC: target.vec_count}[
        rclass
    ]


def _positions(mf: MFunction):
    """defs[reg] -> list of instr indices; uses[reg] -> list; boundaries."""
    defs: dict[int, list[int]] = {}
    uses: dict[int, list[int]] = {}
    regs: dict[int, VReg] = {}
    boundaries: list[int] = []
    for i, ins in enumerate(mf.instrs):
        if ins.op in _BOUNDARY_OPS:
            boundaries.append(i)
        if ins.dst is not None:
            defs.setdefault(ins.dst.id, []).append(i)
            regs[ins.dst.id] = ins.dst
        for s in ins.srcs:
            uses.setdefault(s.id, []).append(i)
            regs[s.id] = s
    # Parameters are defined at entry.
    for _, _, reg in mf.scalar_params:
        defs.setdefault(reg.id, []).insert(0, -1)
        regs[reg.id] = reg
    return defs, uses, regs, boundaries


def _crosses_boundary(span: tuple[int, int], boundaries: list[int]) -> bool:
    lo, hi = span
    import bisect

    k = bisect.bisect_right(boundaries, lo)
    return k < len(boundaries) and boundaries[k] < hi


def _inject_spills(mf: MFunction, victim_ids: set[int]) -> AllocStats:
    """Insert spill_st after defs and spill_ld before uses of victims."""
    stats = AllocStats(spilled_values=len(victim_ids))
    slots: dict[int, int] = {}
    new_instrs: list[MInstr] = []
    for ins in mf.instrs:
        reloads = []
        for s in ins.srcs:
            if s.id in victim_ids and s.id in slots:
                reloads.append(s)
        for s in reloads:
            new_instrs.append(
                MInstr("spill_ld", s, [], {"slot": slots[s.id]})
            )
            stats.spill_loads += 1
        new_instrs.append(ins)
        if ins.dst is not None and ins.dst.id in victim_ids:
            slot = slots.setdefault(ins.dst.id, next(_slot_ids))
            new_instrs.append(
                MInstr("spill_st", None, [ins.dst], {"slot": slot})
            )
            stats.spill_stores += 1
    # Spill parameters at entry if victimized.
    prologue: list[MInstr] = []
    for _, _, reg in mf.scalar_params:
        if reg.id in victim_ids:
            slot = slots.setdefault(reg.id, next(_slot_ids))
            prologue.append(MInstr("spill_st", None, [reg], {"slot": slot}))
            stats.spill_stores += 1
    mf.instrs = prologue + new_instrs
    return stats


def allocate_local(mf: MFunction, target: Target) -> AllocStats:
    """Mono-style local allocation.

    Values whose live range crosses a basic-block boundary are spilled,
    except for up to half of each register file pinned in creation order
    (loop induction variables and carried values are created first by the
    flattener, so they win the pins — Mono similarly kept loop locals in
    registers when it could).
    """
    defs, uses, regs, boundaries = _positions(mf)
    pinned_budget = {
        GPR: max(_file_size(target, GPR) // 2, 1),
        FPR: max(_file_size(target, FPR) // 2, 1),
        VEC: max(_file_size(target, VEC) // 2, 0),
    }
    # Explicit pin candidates (loop control and carried values), deepest
    # loops first — Mono kept hot loop locals in registers when it could.
    pin_list = sorted(
        mf.meta.get("pinned", ()), key=lambda t: (-t[0], t[1])
    )
    pin_rank = {rid: i for i, (_, rid, _) in enumerate(pin_list)}
    chosen: set[int] = set()
    counts = {GPR: 0, FPR: 0, VEC: 0}
    ordered = sorted(
        regs.values(),
        key=lambda r: (pin_rank.get(r.id, 1 << 30), r.id),
    )
    for reg in ordered:
        if counts[reg.rclass] < pinned_budget[reg.rclass]:
            chosen.add(reg.id)
            counts[reg.rclass] += 1
    victims: set[int] = set()
    for rid, reg in regs.items():
        if rid in chosen:
            continue
        d = defs.get(rid, [])
        u = uses.get(rid, [])
        if not d or not u:
            continue
        span = (min(d), max(u))
        if _crosses_boundary(span, boundaries):
            victims.add(rid)
    return _inject_spills(mf, victims)


def allocate_linear_scan(mf: MFunction, target: Target) -> AllocStats:
    """Linear-scan allocation: spill only under true register pressure."""
    defs, uses, regs, _ = _positions(mf)
    intervals: list[tuple[int, int, VReg]] = []
    for rid, reg in regs.items():
        d = defs.get(rid, [])
        u = uses.get(rid, [])
        if not d:
            continue
        end = max(u) if u else min(d)
        intervals.append((min(d), end, reg))
    victims: set[int] = set()
    for rclass in (GPR, FPR, VEC):
        k = _file_size(target, rclass)
        if k <= 0:
            continue
        cls_ints = sorted(
            (iv for iv in intervals if iv[2].rclass == rclass),
            key=lambda iv: iv[0],
        )
        active: list[tuple[int, int, VReg]] = []
        for start, end, reg in cls_ints:
            active = [a for a in active if a[1] >= start and a[2].id not in victims]
            active.append((start, end, reg))
            if len(active) > k:
                # Spill the interval with the furthest end (classic choice).
                active.sort(key=lambda a: a[1])
                victim = active.pop()
                victims.add(victim[2].id)
    if not victims:
        return AllocStats()
    return _inject_spills(mf, victims)
