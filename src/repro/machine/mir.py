"""Machine IR (MIR): the flat, branchy form both online compilers emit.

The structured IR is flattened into a linear instruction list with labels
and conditional branches, over an infinite virtual register file.  Register
allocation then maps virtual registers onto the target's physical file,
inserting spill code.  The cycle-cost VM (:mod:`repro.machine.vm`) executes
MIR directly, charging each instruction its target-specific cost; the
IACA-analogue (:mod:`repro.machine.iaca`) statically sums the same costs
over a loop body.

Memory is byte-addressed per array: an address operand is a byte offset
into a named array's buffer, so alignment semantics are explicit (``vload_a``
traps on a misaligned address, ``vload_fa`` floors it, AltiVec-style).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir.types import ScalarType, VectorType

__all__ = ["VReg", "MInstr", "MFunction", "ArraySlot", "GPR", "FPR", "VEC"]

GPR = "gpr"  # integer scalar registers
FPR = "fpr"  # floating scalar registers
VEC = "vec"  # vector registers

_reg_ids = itertools.count()


@dataclass(frozen=True)
class VReg:
    """A virtual (pre-allocation) or physical (post-allocation) register.

    ``phys`` is None for virtual registers; after allocation it holds the
    physical index.  Spill slots are represented by the allocator as
    negative physical indices on dedicated spill instructions.
    """

    id: int
    rclass: str
    type: ScalarType | VectorType | None = None
    phys: int | None = None

    @staticmethod
    def fresh(rclass: str, type=None) -> "VReg":
        return VReg(next(_reg_ids), rclass, type)

    def short(self) -> str:
        prefix = {GPR: "r", FPR: "f", VEC: "v"}[self.rclass]
        if self.phys is not None:
            return f"{prefix}{self.phys}"
        return f"%{prefix}{self.id}"


@dataclass
class MInstr:
    """One machine instruction.

    Attributes:
        op: opcode mnemonic (see the VM for the executable set).
        dst: destination register or None.
        srcs: source registers.
        imm: immediate payload (int/float constant, label name, array name,
            element type, lane count, lib-call name...), opcode-specific.
    """

    op: str
    dst: VReg | None = None
    srcs: list[VReg] = field(default_factory=list)
    imm: dict = field(default_factory=dict)

    def regs(self) -> list[VReg]:
        out = list(self.srcs)
        if self.dst is not None:
            out.append(self.dst)
        return out

    def __repr__(self) -> str:
        parts = [self.op]
        if self.dst is not None:
            parts.append(self.dst.short())
        parts.extend(s.short() for s in self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        return " ".join(parts)


@dataclass
class ArraySlot:
    """A function's array parameter at the machine level."""

    name: str
    elem: ScalarType
    may_alias: bool = False


@dataclass
class MFunction:
    """A flattened machine function.

    Attributes:
        name: kernel name.
        scalar_params: (name, type, VReg) triples — the VM binds call
            arguments to these registers on entry.
        arrays: the array parameters, bound to VM buffers at call time.
        instrs: the flat instruction list; ``label`` pseudo-instructions
            carry ``imm={"name": ...}``.
        ret: register holding the return value, or None.
    """

    name: str
    scalar_params: list[tuple[str, ScalarType, VReg]] = field(default_factory=list)
    arrays: list[ArraySlot] = field(default_factory=list)
    instrs: list[MInstr] = field(default_factory=list)
    ret: VReg | None = None
    meta: dict = field(default_factory=dict)

    def emit(self, opcode: str, dst=None, srcs=None, **imm) -> MInstr:
        instr = MInstr(opcode, dst, list(srcs or []), imm)
        self.instrs.append(instr)
        return instr

    def labels(self) -> dict[str, int]:
        return {
            ins.imm["name"]: idx
            for idx, ins in enumerate(self.instrs)
            if ins.op == "label"
        }

    def dump(self) -> str:
        lines = [f"mfunc {self.name}:"]
        for ins in self.instrs:
            pad = "" if ins.op == "label" else "  "
            lines.append(pad + repr(ins))
        return "\n".join(lines)
