"""Machine layer: flat machine IR, memory model, cycle-cost VM, register
allocation models, and the IACA-style static analyzer."""

from .flatten import FlattenOptions, flatten
from .iaca import ThroughputReport, analyze_loop_throughput
from .memory import GUARD_BYTES, ArrayBuffer
from .mir import FPR, GPR, VEC, ArraySlot, MFunction, MInstr, VReg
from .regalloc import AllocStats, allocate_linear_scan, allocate_local
from .threaded import ThreadedCode, ThreadedVM, translate
from .vm import VM, RunResult, VMError

__all__ = [
    "MFunction",
    "MInstr",
    "VReg",
    "ArraySlot",
    "GPR",
    "FPR",
    "VEC",
    "flatten",
    "FlattenOptions",
    "ArrayBuffer",
    "GUARD_BYTES",
    "VM",
    "VMError",
    "RunResult",
    "ThreadedVM",
    "ThreadedCode",
    "translate",
    "allocate_local",
    "allocate_linear_scan",
    "AllocStats",
    "analyze_loop_throughput",
    "ThroughputReport",
]
