"""Machine layer: flat machine IR, memory model, cycle-cost VM and its
faster engines (threaded code, generated source), the pluggable engine
registry, register allocation models, and the IACA-style static
analyzer."""

from .codegen import CodegenCode
from .flatten import FlattenOptions, flatten
from .iaca import ThroughputReport, analyze_loop_throughput
from .memory import GUARD_BYTES, ArrayBuffer
from .mir import FPR, GPR, VEC, ArraySlot, MFunction, MInstr, VReg
from .regalloc import AllocStats, allocate_linear_scan, allocate_local
from .registry import (
    DEFAULT_ENGINE,
    Engine,
    engine_names,
    get_engine,
    register_engine,
    unregister_engine,
)
from .threaded import ThreadedCode, ThreadedVM, translate
from .vm import VM, RunResult, VMError

__all__ = [
    "MFunction",
    "MInstr",
    "VReg",
    "ArraySlot",
    "GPR",
    "FPR",
    "VEC",
    "flatten",
    "FlattenOptions",
    "ArrayBuffer",
    "GUARD_BYTES",
    "VM",
    "VMError",
    "RunResult",
    "ThreadedVM",
    "ThreadedCode",
    "CodegenCode",
    "translate",
    "Engine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "DEFAULT_ENGINE",
    "allocate_local",
    "allocate_linear_scan",
    "AllocStats",
    "analyze_loop_throughput",
    "ThroughputReport",
]
