"""IACA-style static throughput analysis (Table 3 of the paper).

The Intel Architecture Code Analyzer computes "a static evaluation of the
cycles spent in a basic block, such as a loop body ... the asymptotic number
of cycles consumed by executing one iteration of the vectorized loop".

This analogue finds the hottest loop (the innermost vector loop, identified
as the back-branch whose body contains vector instructions, falling back to
the innermost loop overall) and reports a throughput estimate::

    cycles/iter = max(total_uops / issue_width,
                      memory_uops / mem_ports,
                      weighted instruction cost / issue_width)

which captures the superscalar behaviour that makes real AVX loops run in
2-6 cycles per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..targets.base import Target
from .mir import MFunction

__all__ = ["analyze_loop_throughput", "ThroughputReport"]

_MEM_OPS = {
    "load", "store", "vload_a", "vload_u", "vload_fa", "vstore_a",
    "vstore_u", "spill_ld", "spill_st",
}
_VECTOR_PREFIX = "v"
_MEM_PORTS = 2


@dataclass
class ThroughputReport:
    """Static cycles-per-iteration estimate of the hottest loop body."""

    cycles_per_iter: float
    uops: int
    memory_uops: int
    vector_uops: int
    body_range: tuple[int, int]

    def rounded(self) -> int:
        return max(1, round(self.cycles_per_iter))


def _find_loops(mf: MFunction) -> list[tuple[int, int]]:
    """(label_index, branch_index) pairs for backward branches."""
    labels = mf.labels()
    loops = []
    for i, ins in enumerate(mf.instrs):
        if ins.op == "br" and labels.get(ins.imm.get("label"), 1 << 30) < i:
            loops.append((labels[ins.imm["label"]], i))
    return loops


def analyze_loop_throughput(mf: MFunction, target: Target) -> ThroughputReport:
    """Analyze the hottest (preferably vectorized, innermost) loop body."""
    loops = _find_loops(mf)
    if not loops:
        return ThroughputReport(0.0, 0, 0, 0, (0, 0))

    def is_vector_body(span: tuple[int, int]) -> bool:
        return any(
            ins.op.startswith(_VECTOR_PREFIX) and ins.op != "vconst"
            for ins in mf.instrs[span[0] : span[1]]
        )

    def is_innermost(span: tuple[int, int]) -> bool:
        return not any(
            other != span and span[0] <= other[0] and other[1] <= span[1]
            for other in loops
        )

    candidates = [s for s in loops if is_vector_body(s) and is_innermost(s)]
    if not candidates:
        candidates = [s for s in loops if is_innermost(s)]
    # Hottest: the innermost loop with the most instructions is the kernel
    # body; prefer vector ones (already filtered).
    span = max(candidates, key=lambda s: s[1] - s[0])

    uops = 0
    mem = 0
    vec = 0
    weighted = 0.0
    for ins in mf.instrs[span[0] : span[1]]:
        if ins.op == "label":
            continue
        uops += 1
        weighted += target.cost.get(ins.op)
        if ins.op in _MEM_OPS:
            mem += 1
        if ins.op.startswith(_VECTOR_PREFIX):
            vec += 1
    cycles = max(
        uops / target.issue_width,
        mem / _MEM_PORTS,
        weighted / (target.issue_width * 1.5),
    )
    return ThroughputReport(cycles, uops, mem, vec, span)
