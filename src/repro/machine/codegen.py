"""Source-generating execution engine: MIR -> Python superinstructions.

The third VM engine (ROADMAP item 2).  Where the threaded engine
(:mod:`repro.machine.threaded`) pre-decodes every instruction into one
closure and still pays a Python call per instruction, this engine
**generates Python source** for the whole function:

* each basic block becomes one straight-line run of statements inside a
  single ``compile()``d function — zero per-instruction dispatch, no
  closure calls, virtual registers bound as plain locals (``r0``,
  ``r1``, ...) and immediates folded into the source;
* block accounting is shared with the threaded engine via
  :mod:`repro.machine.blocks`: one pre-summed ``_cy += <const>`` /
  ``_n += <count>`` per block; a block that would cross the instruction
  budget is replayed per instruction *in generated code* with
  per-instruction budget checks, so the trap raised (budget exhaustion
  vs. an earlier alignment fault inside the block) is exactly the
  reference VM's;
* counted loops additionally get a **batch plan** (``_BatchPlan``):
  on loop-header entry the plan computes the trip count from the live
  induction-variable value and — when the body is a supported streaming
  shape — executes ``trip - 1`` iterations as whole-array numpy slice
  operations (one numpy op per MIR instruction for the *entire batch*),
  then lets the final iteration run normally so every register, spill
  slot, and trap is materialized exactly as the reference interpreter
  would.  Any check that fails simply abandons the batch *before any
  memory write*, and normal per-block execution reproduces the
  reference behaviour, traps included.

Cycle parity is exact for the same reason as the threaded engine's:
every per-op cost is a small dyadic rational (a multiple of 0.5), so
float addition is exact and charging ``k * block_cycles`` equals the
sequential sum.  Fault injection is honored by construction: every
memory access in generated code checks the ``faults.mem_hook`` first,
and batch plans only run while no hook is installed.

Determinism: the generated source depends only on the MIR instruction
list, the target, and ``count_ops``.  Register names are dense
first-use slot indices (never the process-global ``VReg.id``), arrays
are numbered in declaration order, and interned constants are numbered
in first-use order — no process-global counters, no ``hash()`` — so two
fresh processes translating the same function emit byte-identical
source (the PR 8 warm-byte-identity invariant).
``tests/test_codegen_vm.py`` regression-tests this across processes.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .. import faults
from ..ir.types import ScalarType
from ..targets.base import Target
from .blocks import TERMINATORS, block_accounting, loop_depths, partition
from .memory import GUARD_BYTES, ArrayBuffer
from .mir import MFunction, MInstr
from .threaded import _CMP_OPERATORS, _I8_ONE, _I8_ZERO
from .vm import (
    _BIN_FUNCS,
    _CMP,
    _SCALAR_BIN,
    _SCALAR_UN,
    _UN_FUNCS,
    _VECTOR_BIN,
    _VECTOR_UN,
    _canon,
    RunResult,
    VMError,
)

__all__ = ["CodegenCode", "translate"]

#: Python comparison operators per cmp kind (generated inline).
_PYCMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

#: a batch must cover at least this many iterations to be worth taking:
#: the abstract walk costs one numpy call per body instruction, which only
#: amortizes over a few dozen skipped iterations (shorter trips — e.g. the
#: inner loops of the blocked MMM kernels — run faster as plain
#: superinstructions).
_MIN_BATCH = 32

#: upper bound on iterations per batch (bounds slice working-set size; the
#: plan simply re-batches on the next header entry).
_MAX_BATCH = 1 << 20

_INDENT = "    "


def _escape_pct(text: str) -> str:
    """Escape ``%`` for embedding in a %%-format template."""
    return text.replace("%", "%%")


class _Ns:
    """Deterministic namespace for the generated module.

    Values that cannot be spelled as literals (dtypes, numpy scalar
    constants, tiled vector constants, shared op tables, batch plans) are
    bound to names numbered in first-use order with per-prefix counters,
    memoized by a value-derived key — never ``id()`` or ``hash()`` of an
    object, so the emitted source is process-independent.
    """

    def __init__(self):
        self.ns = {
            "_np": np,
            "_F": faults,
            "_VMError": VMError,
            "_i0": np.int8(0),
            "_i1": np.int8(1),
        }
        self._memo: dict[tuple, str] = {}
        self._counters: dict[str, int] = {}

    def bind(self, prefix: str, key: tuple, value) -> str:
        name = self._memo.get((prefix, key))
        if name is None:
            i = self._counters.get(prefix, 0)
            self._counters[prefix] = i + 1
            name = f"{prefix}{i}"
            self._memo[(prefix, key)] = name
            self.ns[name] = value
        return name

    def bind_named(self, name: str, value) -> str:
        self.ns.setdefault(name, value)
        return name


class _Writer:
    """Indented source accumulator."""

    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def w(self, line: str = "") -> None:
        self.lines.append(_INDENT * self.depth + line if line else "")

    def block(self, lines: list[str]) -> None:
        pad = _INDENT * self.depth
        for line in lines:
            self.lines.append(pad + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Emitter:
    """Translates one ``MFunction`` into Python source + namespace.

    The per-op emission mirrors the threaded engine's closures statement
    for statement (same numpy calls, same check order, same messages), so
    values and traps are identical by construction.
    """

    def __init__(self, mfunc: MFunction, target: Target, count_ops: bool,
                 cells: list):
        self.mfunc = mfunc
        self.target = target
        self.count_ops = count_ops
        self.cells = cells                       # [ [buf] ] per array
        self.vs = target.vector_size
        self.names = _Ns()
        self._slot_of: dict[int, int] = {}
        self._arr_index = {
            slot.name: i for i, slot in enumerate(mfunc.arrays)
        }
        self.block_op_counts: list[dict] = []
        self.plans: list = []

    # -- naming ---------------------------------------------------------

    def _slot(self, reg) -> int:
        s = self._slot_of.get(reg.id)
        if s is None:
            s = self._slot_of[reg.id] = len(self._slot_of)
        return s

    def _dt(self, dt: np.dtype) -> str:
        return self.names.bind("_dt", (dt.str,), dt)

    def _T(self, dt: np.dtype) -> str:
        return self.names.bind("_T", (dt.str,), dt.type)

    def _guard(self, expr: str, dt: np.dtype) -> str:
        """Threaded-exact scalar operand normalization as an expression."""
        T = self._T(dt)
        return f"({expr} if type({expr}) is {T} else {T}({expr}))"

    # -- per-instruction emission ---------------------------------------

    def emit(self, ins: MInstr) -> list[str]:  # noqa: C901
        op = ins.op
        imm = ins.imm
        d = f"r{self._slot(ins.dst)}" if ins.dst is not None else None
        ss = [f"r{self._slot(r)}" for r in ins.srcs]
        vs = self.vs

        if op == "const":
            v = imm["type"].numpy_dtype.type(imm["value"])
            k = self.names.bind(
                "_k", (imm["type"].numpy_dtype.str, repr(v)), v
            )
            return [f"{d} = {k}"]

        if op == "mov":
            return [f"{d} = {ss[0]}"]

        if op == "lea":
            scale = imm.get("scale", 1)
            offset = imm.get("offset", 0)
            if scale == 1 and offset == 0:
                return [f"{d} = int({ss[0]})"]
            if scale == 1:
                return [f"{d} = int({ss[0]}) + {offset}"]
            return [f"{d} = int({ss[0]}) * {scale} + {offset}"]

        if op in _SCALAR_BIN:
            dt = imm["type"].numpy_dtype
            a = self._guard(ss[0], dt)
            b = self._guard(ss[1], dt)
            if op == "add":
                return [f"{d} = {a} + {b}"]
            if op == "sub":
                return [f"{d} = {a} - {b}"]
            if op == "mul":
                return [f"{d} = {a} * {b}"]
            fn = self.names.bind_named(f"_f_{op}", _BIN_FUNCS[op])
            return [f"{d} = {fn}({a}, {b}, {self._dt(dt)})"]

        if op in _SCALAR_UN:
            dt = imm["type"].numpy_dtype
            fn = self.names.bind_named(f"_u_{op}", _UN_FUNCS[op])
            return [f"{d} = {fn}({self._guard(ss[0], dt)}, {self._dt(dt)})"]

        if op == "cmp":
            pyop = _PYCMP[imm["op"]]
            return [f"{d} = _i1 if {ss[0]} {pyop} {ss[1]} else _i0"]

        if op == "select":
            return [f"{d} = {ss[1]} if {ss[0]} else {ss[2]}"]

        if op == "cvt":
            to: ScalarType = imm["to"]
            T = self._T(to.numpy_dtype)
            if to.is_float:
                return [f"{d} = {T}({ss[0]})"]
            return [
                f"_v = {ss[0]}",
                "if isinstance(_v, (_np.floating, float)):",
                "    _v = int(_v)",
                f"{d} = {T}(_np.int64(_v))",
            ]

        if op == "load":
            ai = self._arr_index[imm["array"]]
            dt = imm["type"].numpy_dtype
            nb = dt.itemsize
            oob = (
                f"out-of-bounds access: offset %d, {nb} bytes (array of "
                f"%d data bytes + {GUARD_BYTES} guard)"
            )
            return [
                f"if _mh is not None: _mh('load', {imm['array']!r})",
                f"_o = int({ss[0]})",
                f"_s = _g{ai} + _o",
                f"if _s < 0 or _s + {nb} > _L{ai}:",
                f"    raise IndexError({oob!r} % (_o, _b{ai}.nbytes))",
                f"{d} = _w{ai}[_s : _s + {nb}].view({self._dt(dt)})[0]",
            ]

        if op == "store":
            ai = self._arr_index[imm["array"]]
            dt = imm["type"].numpy_dtype
            nb = dt.itemsize
            oob = f"out-of-bounds store: offset %d, {nb} bytes"
            return [
                f"if _mh is not None: _mh('store', {imm['array']!r})",
                f"_o = int({ss[0]})",
                f"_s = _g{ai} + _o",
                f"if _s < 0 or _s + {nb} > _L{ai}:",
                f"    raise IndexError({oob!r} % (_o,))",
                f"_w{ai}[_s : _s + {nb}].view({self._dt(dt)})[0] = {ss[1]}",
            ]

        if op == "spill_st":
            return [f"_sp[{imm['slot']!r}] = {ss[0]}"]

        if op == "spill_ld":
            return [f"{d} = _sp[{imm['slot']!r}]"]

        if op == "arr_overlap":
            i1 = self._arr_index[imm["a1"]]
            i2 = self._arr_index[imm["a2"]]
            return [f"{d} = _i1 if _w{i1} is _w{i2} else _i0"]

        if op == "arr_aligned":
            ai = self._arr_index[imm["array"]]
            return [f"{d} = _i1 if _g{ai} % {imm['align']} == 0 else _i0"]

        return self._emit_vector(ins, op, imm, d, ss, vs)

    def _emit_vector(self, ins, op, imm, d, ss, vs):  # noqa: C901
        if op == "vconst":
            elem: ScalarType = imm["elem"]
            lanes = imm["lanes"]
            values = imm["values"]
            reps = -(-lanes // len(values))
            v = np.tile(np.asarray(values, dtype=elem.numpy_dtype), reps)[
                :lanes
            ].copy()
            k = self.names.bind(
                "_K",
                (elem.numpy_dtype.str, lanes, repr(tuple(values))),
                v,
            )
            return [f"{d} = {k}"]

        if op == "vsplat":
            dt = imm["elem"].numpy_dtype
            return [
                f"{d} = _np.full({imm['lanes']}, {ss[0]}, "
                f"dtype={self._dt(dt)})"
            ]

        if op == "vaffine":
            dt = imm["elem"].numpy_dtype
            T = self._T(dt)
            idx = self.names.bind(
                "_X", (dt.str, imm["lanes"]),
                np.arange(imm["lanes"], dtype=dt),
            )
            return [
                f"{d} = ({T}({ss[0]}) + {idx} * {T}({ss[1]}))"
                f".astype({self._dt(dt)})"
            ]

        if op in ("vload_a", "vload_u", "vload_fa"):
            name = imm["array"]
            ai = self._arr_index[name]
            dt = imm["elem"].numpy_dtype
            nb = dt.itemsize * imm["lanes"]
            oob = (
                f"out-of-bounds access: offset %d, {nb} bytes (array of "
                f"%d data bytes + {GUARD_BYTES} guard)"
            )
            lines = [
                f"if _mh is not None: _mh({op!r}, {name!r})",
                f"_o = int({ss[0]})",
            ]
            if op == "vload_fa":
                lines.append(f"_o -= (_g{ai} + _o) % {vs}")
            lines.append(f"_s = _g{ai} + _o")
            if op == "vload_a":
                mis = (
                    f"aligned vector load from misaligned address (array "
                    f"{_escape_pct(name)}, offset %d, addr%%{vs}=%d)"
                )
                lines += [
                    f"if _s % {vs} != 0:",
                    f"    raise _VMError({mis!r} % (_o, _s % {vs}))",
                ]
            lines += [
                f"if _s < 0 or _s + {nb} > _L{ai}:",
                f"    raise IndexError({oob!r} % (_o, _b{ai}.nbytes))",
                f"{d} = _w{ai}[_s : _s + {nb}].view({self._dt(dt)}).copy()",
            ]
            return lines

        if op in ("vstore_a", "vstore_u"):
            name = imm["array"]
            ai = self._arr_index[name]
            lines = [
                f"if _mh is not None: _mh({op!r}, {name!r})",
                f"_o = int({ss[0]})",
                f"_s = _g{ai} + _o",
            ]
            if op == "vstore_a":
                mis = (
                    f"aligned vector store to misaligned address (array "
                    f"{_escape_pct(name)}, offset %d)"
                )
                lines += [
                    f"if _s % {vs} != 0:",
                    f"    raise _VMError({mis!r} % (_o,))",
                ]
            oob = "out-of-bounds store: offset %d, %d bytes"
            lines += [
                f"_v = {ss[1]}",
                "if not _v.flags['C_CONTIGUOUS']:",
                "    _v = _np.ascontiguousarray(_v)",
                "_u = _v.view(_np.uint8)",
                f"if _s < 0 or _s + _u.size > _L{ai}:",
                f"    raise IndexError({oob!r} % (_o, _u.size))",
                f"_w{ai}[_s : _s + _u.size] = _u",
            ]
            return lines

        if op == "lvsr":
            ai = self._arr_index[imm["array"]]
            return [f"{d} = _np.int64((_g{ai} + int({ss[0]})) % {vs})"]

        if op == "vperm":
            return [
                f"_v = _np.ascontiguousarray({ss[0]}).view(_np.uint8)",
                f"_u = _np.ascontiguousarray({ss[1]}).view(_np.uint8)",
                f"_t = int({ss[2]})",
                f"{d} = _np.concatenate([_v, _u])[_t : _t + _v.size]"
                f".view({ss[0]}.dtype).copy()",
            ]

        if op in _VECTOR_BIN:
            dt = imm["elem"].numpy_dtype
            dtn = self._dt(dt)
            canon = _canon(op)
            if canon in ("add", "sub", "mul"):
                sym = {"add": "+", "sub": "-", "mul": "*"}[canon]
                return [
                    f"_r = {ss[0]} {sym} {ss[1]}",
                    f"{d} = _r if _r.dtype == {dtn} "
                    f"else _np.asarray(_r, dtype={dtn})",
                ]
            fn = self.names.bind_named(f"_f_{canon}", _BIN_FUNCS[canon])
            return [
                f"{d} = _np.asarray({fn}({ss[0]}, {ss[1]}, {dtn}), "
                f"dtype={dtn})"
            ]

        if op in _VECTOR_UN:
            dt = imm["elem"].numpy_dtype
            dtn = self._dt(dt)
            canon = _canon(op)
            fn = self.names.bind_named(f"_u_{canon}", _UN_FUNCS[canon])
            return [f"{d} = _np.asarray({fn}({ss[0]}, {dtn}), dtype={dtn})"]

        if op == "vcmp":
            fn = self.names.bind_named(f"_c_{imm['op']}", _CMP[imm["op"]])
            return [f"{d} = {fn}({ss[0]}, {ss[1]}).astype(_np.int8)"]

        if op == "vselect":
            return [
                f"{d} = _np.where({ss[0]}.astype(bool), {ss[1]}, {ss[2]})"
            ]

        if op == "vcvt":
            to = imm["to"]
            dtn = self._dt(to.numpy_dtype)
            if to.is_float:
                return [f"{d} = {ss[0]}.astype({dtn})"]
            return [f"{d} = _np.trunc({ss[0]}).astype({dtn})"]

        if op == "vinsert0":
            return [
                f"_v = {ss[0]}.copy()",
                f"_v[0] = _v.dtype.type({ss[1]})",
                f"{d} = _v",
            ]

        if op == "vreduce":
            kind = imm["kind"]
            if kind == "plus":
                return [
                    f"_v = {ss[0]}",
                    f"{d} = _v.dtype.type(_np.add.reduce(_v))",
                ]
            if kind == "min":
                return [f"{d} = {ss[0]}.min()"]
            return [f"{d} = {ss[0]}.max()"]

        if op == "vdot":
            dtn = self._dt(imm["elem"].numpy_dtype)
            return [
                f"_v = {ss[0]}.astype({dtn}) * {ss[1]}.astype({dtn})",
                f"{d} = ({ss[2]} + _v.reshape(-1, 2).sum(axis=1, "
                f"dtype={dtn})).astype({dtn})",
            ]

        if op == "vwidenmul":
            dtn = self._dt(imm["elem"].numpy_dtype)
            sl = "0 : _m // 2" if imm["half"] == "lo" else "_m // 2 : _m"
            return [
                f"_v = {ss[0]}",
                "_m = _v.size",
                f"{d} = _v[{sl}].astype({dtn}) * {ss[1]}[{sl}]"
                f".astype({dtn})",
            ]

        if op == "vpack":
            dtn = self._dt(imm["elem"].numpy_dtype)
            return [
                f"{d} = _np.concatenate([{ss[0]}, {ss[1]}])"
                f".astype({dtn})"
            ]

        if op == "vunpack":
            dtn = self._dt(imm["elem"].numpy_dtype)
            sl = "0 : _m // 2" if imm["half"] == "lo" else "_m // 2 : _m"
            return [
                f"_v = {ss[0]}",
                "_m = _v.size",
                f"{d} = _v[{sl}].astype({dtn})",
            ]

        if op == "vextract":
            parts = ", ".join(ss)
            return [
                f"{d} = _np.concatenate([{parts}])"
                f"[{imm['offset']}::{imm['stride']}].copy()"
            ]

        if op == "vinterleave":
            sl = "0 : _m // 2" if imm["half"] == "lo" else "_m // 2 : _m"
            return [
                f"_v = {ss[0]}",
                f"_u = {ss[1]}",
                "_m = _v.size",
                "_x = _np.empty(_m, dtype=_v.dtype)",
                f"_x[0::2] = _v[{sl}]",
                f"_x[1::2] = _u[{sl}]",
                f"{d} = _x",
            ]

        if op == "call_lib":
            # Library fallback: emit the emulated idiom's statements; the
            # block accounting already charged call_lib's cost and counted
            # the op as "call_lib", exactly like the reference VM.
            return self.emit(MInstr(imm["sem"], ins.dst, ins.srcs, imm))

        raise VMError(f"unknown opcode {op!r}")

    # -- function assembly ----------------------------------------------

    def _ret(self, val: str) -> str:
        if self.count_ops:
            return f"return ({val}, _cy, _n, _bc)"
        return f"return ({val}, _cy, _n)"

    def build(self) -> tuple[str, dict]:
        """Emit the whole function; returns ``(source, namespace)``."""
        mfunc = self.mfunc
        # Dense register slots: parameters first, then first-use order.
        for _name, _type, reg in mfunc.scalar_params:
            self._slot(reg)
        for ins in mfunc.instrs:
            if ins.op == "label":
                continue
            if ins.op in TERMINATORS:
                if ins.srcs:
                    self._slot(ins.srcs[0])
                continue
            if ins.dst is not None:
                self._slot(ins.dst)
            for r in ins.srcs:
                self._slot(r)

        w = _Writer()
        params = [f"r{self._slot(reg)}" for _, _, reg in mfunc.scalar_params]
        bufs = [f"_b{i}" for i in range(len(mfunc.arrays))]
        sig = ", ".join(["_maxi", "_sp"] + params + bufs)
        w.w(f"def _kernel({sig}):")
        w.depth += 1
        instrs = mfunc.instrs
        if not instrs:
            w.w(
                "return (None, 0.0, 0, [])" if self.count_ops
                else "return (None, 0.0, 0)"
            )
            return w.source(), self.names.ns
        w.w("_mh = _F.mem_hook")
        for i in range(len(mfunc.arrays)):
            w.w(f"_w{i} = _b{i}._raw")
            w.w(f"_g{i} = _b{i}._base")
            w.w(f"_L{i} = _w{i}.shape[0]")
        w.w("_cy = 0.0")
        w.w("_n = 0")

        starts, block_at = partition(instrs)
        nblocks = len(starts)
        n = len(instrs)
        labels = mfunc.labels()
        cost = self.target.cost
        x87 = bool(mfunc.meta.get("x87"))

        if self.count_ops:
            w.w(f"_bc = [0] * {nblocks}")
        w.w("_bi = 0")

        bodies: list[list] = []
        accounting: list[tuple[int, float]] = []
        for bi, s in enumerate(starts):
            e = starts[bi + 1] if bi + 1 < nblocks else n
            body = instrs[s:e]
            bodies.append(body)
            cyc, oc = block_accounting(body, cost, x87)
            accounting.append((len(body), cyc))
            self.block_op_counts.append(oc)

        sites = self._find_plans(bodies, labels, block_at, accounting)

        depths = loop_depths(starts, instrs, labels, block_at)
        order = sorted(range(nblocks), key=lambda k: (-depths[k], k))

        w.w(
            "with _np.errstate(over='ignore', invalid='ignore', "
            "divide='ignore'):"
        )
        w.depth += 1
        w.w("while 1:")
        w.depth += 1
        for pos, bi in enumerate(order):
            w.w(("if" if pos == 0 else "elif") + f" _bi == {bi}:")
            w.depth += 1
            self._emit_block(
                w, bi, bodies[bi], accounting[bi], labels, block_at,
                nblocks, sites.get(bi),
            )
            w.depth -= 1
        w.w("else:")
        w.depth += 1
        w.w("raise AssertionError('unreachable block %r' % (_bi,))")
        return w.source(), self.names.ns

    def _emit_block(self, w, bi, body, acct, labels, block_at, nblocks,
                    site):
        count, cyc = acct
        if site is not None:
            pname, in_regs, iv_reg, body_bi = site
            w.w("if _mh is None:")
            w.depth += 1
            w.w("try:")
            w.w(
                _INDENT + f"_t = {pname}.attempt(({', '.join(in_regs)},), "
                "_sp, _n, _maxi)"
            )
            w.w("except NameError:")
            w.w(_INDENT + "_t = None")
            w.w("if _t is not None:")
            w.depth += 1
            w.w(f"{iv_reg} = _t[0]")
            w.w("_n += _t[1]")
            w.w("_cy += _t[2]")
            if self.count_ops:
                w.w(f"_bc[{bi}] += _t[3]")
                w.w(f"_bc[{body_bi}] += _t[3]")
            w.depth -= 2
        w.w(f"_n += {count}")
        w.w("if _n > _maxi:")
        w.depth += 1
        w.w(f"_n -= {count}")
        msg = (
            "instruction budget exceeded in "
            f"{_escape_pct(self.mfunc.name)} (%d)"
        )
        for ins in body:
            w.w("_n += 1")
            w.w("if _n > _maxi:")
            w.w(_INDENT + f"raise _VMError({msg!r} % (_maxi,))")
            if ins.op != "label" and ins.op not in TERMINATORS:
                w.block(self.emit(ins))
        w.w("raise AssertionError('unreachable: overrun block must trap')")
        w.depth -= 1
        w.w(f"_cy += {cyc!r}")
        if self.count_ops:
            w.w(f"_bc[{bi}] += 1")
        term = None
        for ins in body:
            if ins.op == "label":
                continue
            if ins.op in TERMINATORS:
                term = ins
                continue
            w.block(self.emit(ins))
        self._emit_terminator(w, term, bi, labels, block_at, nblocks)

    def _emit_terminator(self, w, term, bi, labels, block_at, nblocks):
        none_ret = self._ret("None")
        if term is None:  # fallthrough
            if bi + 1 < nblocks:
                w.w(f"_bi = {bi + 1}")
                w.w("continue")
            else:
                w.w(none_ret)
            return
        op = term.op
        if op == "br":
            w.w(f"_bi = {block_at[labels[term.imm['label']]]}")
            w.w("continue")
            return
        if op == "ret":
            if term.srcs:
                w.w(self._ret(f"r{self._slot(term.srcs[0])}"))
            else:
                w.w(none_ret)
            return
        tk = block_at[labels[term.imm["label"]]]
        fk = bi + 1 if bi + 1 < nblocks else -1
        s = f"r{self._slot(term.srcs[0])}"
        if fk >= 0:
            if op == "brtrue":
                w.w(f"_bi = {tk} if {s} else {fk}")
            else:  # brfalse
                w.w(f"_bi = {fk} if {s} else {tk}")
            w.w("continue")
            return
        # Falling through would run off the end: halt with a None return.
        if op == "brtrue":
            w.w(f"if {s}:")
            w.w(_INDENT + f"_bi = {tk}")
            w.w(_INDENT + "continue")
            w.w(none_ret)
        else:  # brfalse: truthy predicate falls through (halts)
            w.w(f"if {s}:")
            w.w(_INDENT + none_ret)
            w.w(f"_bi = {tk}")
            w.w("continue")

    # -- batch-plan discovery -------------------------------------------

    def _find_plans(self, bodies, labels, block_at, accounting):
        """Detect batchable counted loops; ``{header_bi: site}``.

        A site is ``(plan_name, in_reg_names, iv_reg_name, body_bi)`` —
        everything the emitted header needs to call the plan.
        """
        sites = {}
        for bi in range(len(bodies) - 1):
            plan = self._plan_for(bi, bodies, labels, block_at, accounting)
            if plan is None:
                continue
            pname = self.names.bind("_P", (bi,), plan)
            self.plans.append(plan)
            in_regs = [f"r{s}" for s in plan.in_slots]
            sites[bi] = (pname, in_regs, f"r{plan.iv_slot}", bi + 1)
        return sites

    def _plan_for(self, bi, bodies, labels, block_at, accounting):
        """Build a ``_BatchPlan`` for header block ``bi`` if the loop has
        the canonical counted shape ``[label, cmp, brfalse]`` + a single
        body block of supported ops branching back; else None."""
        header = bodies[bi]
        if len(header) != 3:
            return None
        lab, cmp_ins, brf = header
        if lab.op != "label" or cmp_ins.op != "cmp" or brf.op != "brfalse":
            return None
        kind = cmp_ins.imm["op"]
        if kind not in ("lt", "le", "gt", "ge"):
            return None
        if not brf.srcs or brf.srcs[0].id != cmp_ins.dst.id:
            return None
        body = bodies[bi + 1]
        if not body or body[0].op == "label":
            return None
        last = body[-1]
        if last.op != "br":
            return None
        if block_at[labels[last.imm["label"]]] != bi:
            return None

        steps = body[:-1]
        for ins in steps:
            if ins.op not in _PLAN_OPS:
                return None

        writes: dict[int, list] = {}
        for pos, ins in enumerate(steps):
            if ins.dst is not None:
                writes.setdefault(ins.dst.id, []).append((pos, ins))

        ra, rb = cmp_ins.srcs
        a_w = ra.id in writes
        if a_w == (rb.id in writes):
            return None
        iv, bound = (ra, rb) if a_w else (rb, ra)
        if not a_w:
            kind = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}[kind]
        wl = writes[iv.id]
        if len(wl) != 1:
            return None
        add_pos, add_ins = wl[0]
        if add_ins.op != "add":
            return None
        ivdt = add_ins.imm["type"].numpy_dtype
        if ivdt.kind not in "iu":
            return None
        s0, s1 = add_ins.srcs
        if s0.id == iv.id and s1.id != iv.id:
            step_reg = s1
        elif s1.id == iv.id and s0.id != iv.id:
            step_reg = s0
        else:
            return None

        spill_sts = {
            ins.imm["slot"] for ins in steps if ins.op == "spill_st"
        }
        if step_reg.id not in writes:
            step_src = ("reg", step_reg.id)
        else:
            swl = writes[step_reg.id]
            if len(swl) != 1 or swl[0][0] > add_pos:
                return None
            sins = swl[0][1]
            if sins.op == "const":
                step_src = (
                    "const",
                    int(sins.imm["type"].numpy_dtype.type(
                        sins.imm["value"]
                    )),
                )
            elif (sins.op == "spill_ld"
                  and sins.imm["slot"] not in spill_sts):
                step_src = ("spill", sins.imm["slot"])
            else:
                return None

        # Only the IV may be read before it is written (loop-carried
        # registers or spill slots defeat batching).
        seen: set[int] = set()
        seen_spills: set = set()
        for pos, ins in enumerate(steps):
            for r in ins.srcs:
                if r.id in writes and r.id not in seen and r.id != iv.id:
                    return None
            if ins.op == "spill_ld":
                key = ins.imm["slot"]
                if key in spill_sts and key not in seen_spills:
                    return None
            elif ins.op == "spill_st":
                seen_spills.add(ins.imm["slot"])
            if ins.dst is not None:
                seen.add(ins.dst.id)

        inv_ids: list[int] = []
        for ins in steps:
            for r in ins.srcs:
                if r.id not in writes and r.id not in inv_ids:
                    inv_ids.append(r.id)
        for r in (iv, bound):
            if r.id not in inv_ids:
                inv_ids.append(r.id)
        pairs = sorted((self._slot_of[rid], rid) for rid in inv_ids)

        hc, hcyc = accounting[bi]
        bc, bcyc = accounting[bi + 1]
        return _BatchPlan(
            body=steps,
            iv_id=iv.id,
            iv_slot=self._slot_of[iv.id],
            bound_id=bound.id,
            step_src=step_src,
            cmp_kind=kind,
            ivdt=ivdt,
            in_slots=[s for s, _ in pairs],
            in_ids=[rid for _, rid in pairs],
            cells=self.cells,
            arr_index=self._arr_index,
            vs=self.vs,
            per_iter_count=hc + bc,
            per_iter_cycles=hcyc + bcyc,
        )


#: ops the batch walk understands; anything else in a loop body disables
#: the plan at translate time (reductions, permutes, library calls, ...).
_PLAN_OPS = (
    _SCALAR_BIN | _SCALAR_UN | _VECTOR_BIN | _VECTOR_UN | {
        "const", "mov", "lea", "cmp", "select", "cvt", "load", "store",
        "spill_ld", "spill_st", "arr_overlap", "arr_aligned",
        "vconst", "vsplat", "vaffine", "vcmp", "vselect", "vcvt",
        "vload_a", "vload_u", "vstore_a", "vstore_u",
    }
)


class _Bail(Exception):
    """Abandon the current batch attempt (before any memory write).

    ``dead=True`` marks conditions that are structural (unsupported node
    kinds or dtype shapes) so the plan stops attempting; transient
    conditions (trip too short, misalignment, overlap, out-of-bounds)
    retry on the next header entry — or simply let normal per-block
    execution reproduce the reference behaviour, traps included.
    """

    def __init__(self, dead: bool = False):
        super().__init__()
        self.dead = dead


class _WalkState:
    """Per-attempt scratch: the batch width ``k`` and a lazy iota."""

    def __init__(self, k: int):
        self.k = k
        self._idx = None

    def idx(self):
        if self._idx is None:
            self._idx = np.arange(self.k, dtype=np.int64)
        return self._idx


_I64 = np.iinfo(np.int64)


def _cast_inv(v, T):
    """The threaded engine's scalar operand normalization."""
    return v if type(v) is T else T(v)


def _mat(node, st):
    """Materialize a node to a numpy operand (leading axis ``k`` for
    batch nodes; invariants broadcast)."""
    kind = node[0]
    if kind == "i" or kind == "b":
        return node[1]
    _, base, coef, ndt = node
    hi = base + (st.k - 1) * coef
    if not (_I64.min <= base <= _I64.max and _I64.min <= hi <= _I64.max):
        raise _Bail()
    arr = st.idx() * coef + base
    if ndt is not None and ndt != arr.dtype:
        arr = arr.astype(ndt)
    return arr


def _aff_or_none(base, coef, dt, k):
    """Affine node if every value fits ``dt`` exactly, else None (the
    caller falls back to materialized batch arithmetic, which wraps
    elementwise exactly like the sequential engines)."""
    info = np.iinfo(dt)
    hi = base + (k - 1) * coef
    if info.min <= base <= info.max and info.min <= hi <= info.max:
        return ("a", base, coef, dt)
    return None


def _int_operand(node, dt, k):
    """Node as exact ``(base, coef)`` Python ints whose values survive a
    cast to ``dt`` unchanged; None if not integer-affine under ``dt``."""
    if node[0] == "i":
        v = node[1]
        if not isinstance(v, (int, np.integer)):
            return None
        iv = int(v)
        if type(v) is not dt.type:
            info = np.iinfo(dt)
            if not (info.min <= iv <= info.max):
                return None
        return (iv, 0)
    if node[0] == "a":
        _, b, c, _ndt = node
        info = np.iinfo(dt)
        hi = b + (k - 1) * c
        if info.min <= b <= info.max and info.min <= hi <= info.max:
            return (b, c)
        return None
    return None


class _BatchPlan:
    """Batched execution of one counted streaming loop.

    Built at translate time from a canonical header (``label; cmp;
    brfalse``) plus a single body block that branches back.  At run time
    :meth:`attempt` abstractly interprets the body once over nodes —

    * ``("i", value)`` — loop-invariant value,
    * ``("a", base, coef, dtype)`` — affine in the iteration index
      (``dtype is None`` for Python-int address space, as after ``lea``),
    * ``("b", array)`` — batch array with leading axis ``k``

    — turning each supported MIR instruction into at most one whole-batch
    numpy operation.  Loads slice ``k`` strided elements at once; stores
    are deferred, cross-checked against every load/store for unsafe
    overlap, and committed in program order only after the whole walk
    succeeded, so a bail can never leave memory half-written.  The walk
    covers ``trip - 1`` iterations (clipped to the remaining instruction
    budget); the final iteration and the loop exit run through the normal
    generated blocks, which rematerializes every live register and spill
    slot bit-identically.
    """

    def __init__(self, *, body, iv_id, iv_slot, bound_id, step_src,
                 cmp_kind, ivdt, in_slots, in_ids, cells, arr_index, vs,
                 per_iter_count, per_iter_cycles):
        self.body = body
        self.iv_id = iv_id
        self.iv_slot = iv_slot
        self.step_src = step_src
        self.cmp_kind = cmp_kind
        self.ivdt = ivdt
        self.ivT = ivdt.type
        self.in_slots = in_slots
        self.in_ids = in_ids
        self._pos = {rid: i for i, rid in enumerate(in_ids)}
        self.iv_pos = self._pos[iv_id]
        self.bound_pos = self._pos[bound_id]
        self.cells = cells
        self.arr_index = arr_index
        self.vs = vs
        self.per_iter_count = per_iter_count
        self.per_iter_cycles = per_iter_cycles
        info = np.iinfo(ivdt)
        self._iv_lo, self._iv_hi = int(info.min), int(info.max)
        #: successful batches (observability + effectiveness tests).
        self.batches = 0
        self.dead = False

    # -- entry point ----------------------------------------------------

    def attempt(self, vals, sp, executed, maxi):
        """Try one batch; ``(new_iv, d_count, d_cycles, k)`` or None.

        ``vals`` holds the live values of ``in_slots`` in order; ``sp``
        is the spill dict.  Never raises: any bail (or unexpected walk
        error) returns None before memory was touched, and the caller
        falls through to normal execution.
        """
        if self.dead:
            return None
        try:
            return self._attempt(vals, sp, executed, maxi)
        except _Bail as bail:
            if bail.dead:
                self.dead = True
            return None
        except Exception:
            self.dead = True
            return None

    def _attempt(self, vals, sp, executed, maxi):
        iv0 = vals[self.iv_pos]
        bound = vals[self.bound_pos]
        if not isinstance(iv0, (int, np.integer)):
            raise _Bail(dead=True)
        if not isinstance(bound, (int, np.integer)):
            raise _Bail(dead=True)
        iv0 = int(iv0)
        bound = int(bound)
        step = self._step(vals, sp)
        trip = self._trip(iv0, bound, step)
        k = trip - 1
        if k > _MAX_BATCH:
            k = _MAX_BATCH
        if self.per_iter_count > 0:
            room = (maxi - executed) // self.per_iter_count
            if room < k:
                k = room
        if k < _MIN_BATCH:
            raise _Bail()
        hi = iv0 + k * step
        if not (self._iv_lo <= iv0 <= self._iv_hi
                and self._iv_lo <= hi <= self._iv_hi):
            raise _Bail()

        loads, stores = self._walk(vals, sp, iv0, step, k)
        self._check_mem(loads, stores, k)
        self._commit(stores, k)
        self.batches += 1
        return (
            self.ivT(hi),
            k * self.per_iter_count,
            k * self.per_iter_cycles,
            k,
        )

    def _step(self, vals, sp):
        skind, sval = self.step_src
        if skind == "const":
            step = sval
        elif skind == "reg":
            step = vals[self._pos[sval]]
        else:  # spill slot
            if sval not in sp:
                raise _Bail()
            step = sp[sval]
        if not isinstance(step, (int, np.integer)):
            raise _Bail(dead=True)
        step = int(step)
        if step == 0:
            raise _Bail()
        return step

    def _trip(self, iv0, bound, step):
        """Exact number of iterations the loop will still execute."""
        kind = self.cmp_kind
        if kind == "lt":
            if step < 0:
                raise _Bail()
            return -((iv0 - bound) // step) if iv0 < bound else 0
        if kind == "le":
            if step < 0:
                raise _Bail()
            return (bound - iv0) // step + 1 if iv0 <= bound else 0
        if kind == "gt":
            if step > 0:
                raise _Bail()
            return -((bound - iv0) // -step) if iv0 > bound else 0
        # ge
        if step > 0:
            raise _Bail()
        return (iv0 - bound) // -step + 1 if iv0 >= bound else 0

    # -- abstract interpretation over the body --------------------------

    def _walk(self, vals, sp, iv0, step, k):
        env = {}
        for rid, pos in self._pos.items():
            env[rid] = ("i", vals[pos])
        env[self.iv_id] = ("a", iv0, step, self.ivdt)
        wsp: dict = {}
        loads: list = []
        stores: list = []
        st = _WalkState(k)
        for pos, ins in enumerate(self.body):
            self._walk_ins(ins, pos, env, wsp, sp, loads, stores, st)
        return loads, stores

    def _buf(self, name):
        buf = self.cells[self.arr_index[name]][0]
        if buf is None:
            raise _Bail()
        return buf

    @staticmethod
    def _addr(node):
        """Address operand as exact ``(base, coef)`` Python ints."""
        if node[0] == "i":
            v = node[1]
            if not isinstance(v, (int, np.integer)):
                raise _Bail(dead=True)
            return (int(v), 0)
        if node[0] == "a":
            return (int(node[1]), int(node[2]))
        raise _Bail(dead=True)

    @staticmethod
    def _vec_operand(node):
        """Vector operand: invariant or batch value; affine makes no
        sense lane-wise."""
        if node[0] == "i" or node[0] == "b":
            return node[1]
        raise _Bail(dead=True)

    def _batch_scalar(self, node, dt, st):
        """Emulate the threaded engine's per-element ``T(a)``
        normalization for a whole batch."""
        T = dt.type
        if node[0] == "i":
            return _cast_inv(node[1], T)
        if node[0] == "b":
            arr = node[1]
            if arr.dtype != dt:
                arr = arr.astype(dt)
            return arr
        _, base, coef, ndt = node
        hi = base + (st.k - 1) * coef
        if not (_I64.min <= base <= _I64.max and _I64.min <= hi <= _I64.max):
            raise _Bail()
        if ndt is None:
            # Python-int space: the sequential engines cast each value
            # through T(), which *raises* out of range instead of
            # wrapping — bail and let them.
            if dt.kind in "iu":
                info = np.iinfo(dt)
                if not (info.min <= base <= info.max
                        and info.min <= hi <= info.max):
                    raise _Bail()
            elif max(abs(base), abs(hi)) >= 2 ** 53:
                raise _Bail()  # int->float double-rounding differences
        arr = st.idx() * coef + base
        if ndt is not None and ndt != arr.dtype:
            arr = arr.astype(ndt)
        if arr.dtype != dt:
            arr = arr.astype(dt)
        return arr

    def _store_payload(self, node, dt, st):
        """Payload for a batched scalar store; must commit without any
        possibility of raising mid-commit."""
        p = _mat(node, st)
        if isinstance(p, (np.ndarray, np.generic)):
            return p
        if isinstance(p, int):
            if dt.kind in "iu":
                info = np.iinfo(dt)
                if info.min <= p <= info.max:
                    return p
                raise _Bail()  # sequential store raises OverflowError
            if abs(p) >= 2 ** 53:
                raise _Bail()
            return p
        raise _Bail(dead=True)

    def _walk_ins(self, ins, pos, env, wsp, sp, loads, stores,
                  st):  # noqa: C901
        op = ins.op
        imm = ins.imm
        k = st.k

        if op == "const":
            env[ins.dst.id] = (
                "i", imm["type"].numpy_dtype.type(imm["value"])
            )
            return
        if op == "mov":
            env[ins.dst.id] = env[ins.srcs[0].id]
            return
        if op == "lea":
            node = env[ins.srcs[0].id]
            scale = imm.get("scale", 1)
            offset = imm.get("offset", 0)
            if node[0] == "i":
                v = node[1]
                if not isinstance(v, (int, np.integer)):
                    raise _Bail(dead=True)
                env[ins.dst.id] = ("i", int(v) * scale + offset)
            elif node[0] == "a":
                _, base, coef, _ndt = node
                # int(...) is exact on in-range typed values; the result
                # lives in Python-int address space (dtype None), exactly
                # like the sequential engines' lea.
                env[ins.dst.id] = (
                    "a", base * scale + offset, coef * scale, None
                )
            else:
                raise _Bail(dead=True)
            return

        if op in _SCALAR_BIN:
            dt = imm["type"].numpy_dtype
            T = dt.type
            na = env[ins.srcs[0].id]
            nb = env[ins.srcs[1].id]
            if na[0] == "i" and nb[0] == "i":
                a = _cast_inv(na[1], T)
                b = _cast_inv(nb[1], T)
                if op == "add":
                    r = a + b
                elif op == "sub":
                    r = a - b
                elif op == "mul":
                    r = a * b
                else:
                    r = _BIN_FUNCS[op](a, b, dt)
                env[ins.dst.id] = ("i", r)
                return
            if (dt.kind in "iu" and op in ("add", "sub", "mul")
                    and na[0] != "b" and nb[0] != "b"):
                ai = _int_operand(na, dt, k)
                bi = _int_operand(nb, dt, k)
                if ai is not None and bi is not None:
                    node = None
                    if op == "add":
                        node = _aff_or_none(
                            ai[0] + bi[0], ai[1] + bi[1], dt, k
                        )
                    elif op == "sub":
                        node = _aff_or_none(
                            ai[0] - bi[0], ai[1] - bi[1], dt, k
                        )
                    elif ai[1] == 0:
                        node = _aff_or_none(
                            ai[0] * bi[0], ai[0] * bi[1], dt, k
                        )
                    elif bi[1] == 0:
                        node = _aff_or_none(
                            ai[0] * bi[0], ai[1] * bi[0], dt, k
                        )
                    if node is not None:
                        env[ins.dst.id] = node
                        return
            a = self._batch_scalar(na, dt, st)
            b = self._batch_scalar(nb, dt, st)
            if op == "add":
                r = a + b
            elif op == "sub":
                r = a - b
            elif op == "mul":
                r = a * b
            else:
                r = _BIN_FUNCS[op](a, b, dt)
            env[ins.dst.id] = ("b", np.asarray(r, dtype=dt))
            return

        if op in _SCALAR_UN:
            dt = imm["type"].numpy_dtype
            node = env[ins.srcs[0].id]
            fn = _UN_FUNCS[op]
            if node[0] == "i":
                env[ins.dst.id] = (
                    "i", fn(_cast_inv(node[1], dt.type), dt)
                )
                return
            r = fn(self._batch_scalar(node, dt, st), dt)
            env[ins.dst.id] = ("b", np.asarray(r, dtype=dt))
            return

        if op == "cmp":
            na = env[ins.srcs[0].id]
            nb = env[ins.srcs[1].id]
            if na[0] == "i" and nb[0] == "i":
                r = _CMP_OPERATORS[imm["op"]](na[1], nb[1])
                env[ins.dst.id] = ("i", _I8_ONE if r else _I8_ZERO)
                return
            a = _mat(na, st)
            b = _mat(nb, st)
            env[ins.dst.id] = ("b", _CMP[imm["op"]](a, b).astype(np.int8))
            return

        if op == "select":
            nc = env[ins.srcs[0].id]
            na = env[ins.srcs[1].id]
            nb = env[ins.srcs[2].id]
            if nc[0] == "i":
                env[ins.dst.id] = na if nc[1] else nb
                return
            a = _mat(na, st)
            b = _mat(nb, st)
            da = getattr(a, "dtype", None)
            if da is None or da != getattr(b, "dtype", None):
                raise _Bail(dead=True)
            c = _mat(nc, st)
            env[ins.dst.id] = ("b", np.where(c.astype(bool), a, b))
            return

        if op == "cvt":
            node = env[ins.srcs[0].id]
            if node[0] != "i":
                raise _Bail(dead=True)
            to = imm["to"]
            T = to.numpy_dtype.type
            v = node[1]
            if to.is_float:
                env[ins.dst.id] = ("i", T(v))
            else:
                if isinstance(v, (np.floating, float)):
                    v = int(v)
                env[ins.dst.id] = ("i", T(np.int64(v)))
            return

        if op == "load":
            dt = imm["type"].numpy_dtype
            width = dt.itemsize
            buf = self._buf(imm["array"])
            base, coef = self._addr(env[ins.srcs[0].id])
            lo = buf._base + base
            raw = buf._raw
            if coef == 0:
                if lo < 0 or lo + width > raw.shape[0]:
                    raise _Bail()
                loads.append((id(raw), lo, 0, width, pos))
                env[ins.dst.id] = ("i", raw[lo:lo + width].view(dt)[0])
                return
            if coef != width:
                raise _Bail()
            if lo < 0 or lo + k * width > raw.shape[0]:
                raise _Bail()
            loads.append((id(raw), lo, coef, width, pos))
            env[ins.dst.id] = ("b", raw[lo:lo + k * width].view(dt).copy())
            return

        if op in ("vload_a", "vload_u"):
            dt = imm["elem"].numpy_dtype
            nb_ = dt.itemsize * imm["lanes"]
            buf = self._buf(imm["array"])
            base, coef = self._addr(env[ins.srcs[0].id])
            lo = buf._base + base
            raw = buf._raw
            if op == "vload_a" and (lo % self.vs != 0
                                    or coef % self.vs != 0):
                raise _Bail()
            if coef == 0:
                if lo < 0 or lo + nb_ > raw.shape[0]:
                    raise _Bail()
                loads.append((id(raw), lo, 0, nb_, pos))
                env[ins.dst.id] = ("i", raw[lo:lo + nb_].view(dt).copy())
                return
            if coef != nb_:
                raise _Bail()
            if lo < 0 or lo + k * nb_ > raw.shape[0]:
                raise _Bail()
            loads.append((id(raw), lo, coef, nb_, pos))
            env[ins.dst.id] = (
                "b",
                raw[lo:lo + k * nb_].view(dt).copy().reshape(
                    k, imm["lanes"]
                ),
            )
            return

        if op == "store":
            dt = imm["type"].numpy_dtype
            width = dt.itemsize
            buf = self._buf(imm["array"])
            base, coef = self._addr(env[ins.srcs[0].id])
            lo = buf._base + base
            raw = buf._raw
            if coef != width:
                raise _Bail()
            if lo < 0 or lo + k * width > raw.shape[0]:
                raise _Bail()
            payload = self._store_payload(env[ins.srcs[1].id], dt, st)
            stores.append(
                (id(raw), raw, lo, coef, width, pos, dt, None, payload)
            )
            return

        if op in ("vstore_a", "vstore_u"):
            buf = self._buf(imm["array"])
            base, coef = self._addr(env[ins.srcs[0].id])
            lo = buf._base + base
            raw = buf._raw
            node = env[ins.srcs[1].id]
            p = _mat(node, st)
            if not isinstance(p, np.ndarray):
                raise _Bail(dead=True)
            if node[0] == "b":
                if p.ndim != 2 or p.shape[0] != k:
                    raise _Bail(dead=True)
                lanes = p.shape[1]
            else:
                if p.ndim != 1:
                    raise _Bail(dead=True)
                lanes = p.shape[0]
            row_nb = p.dtype.itemsize * lanes
            if op == "vstore_a" and (lo % self.vs != 0
                                     or coef % self.vs != 0):
                raise _Bail()
            if coef != row_nb:
                raise _Bail()
            if lo < 0 or lo + k * row_nb > raw.shape[0]:
                raise _Bail()
            stores.append(
                (id(raw), raw, lo, coef, row_nb, pos, p.dtype, lanes, p)
            )
            return

        if op == "spill_ld":
            key = imm["slot"]
            if key in wsp:
                env[ins.dst.id] = wsp[key]
            elif key in sp:
                env[ins.dst.id] = ("i", sp[key])
            else:
                raise _Bail()
            return
        if op == "spill_st":
            wsp[imm["slot"]] = env[ins.srcs[0].id]
            return

        if op == "arr_overlap":
            b1 = self._buf(imm["a1"])
            b2 = self._buf(imm["a2"])
            env[ins.dst.id] = (
                "i", _I8_ONE if b1._raw is b2._raw else _I8_ZERO
            )
            return
        if op == "arr_aligned":
            buf = self._buf(imm["array"])
            env[ins.dst.id] = (
                "i",
                _I8_ONE if buf.address_of(0) % imm["align"] == 0
                else _I8_ZERO,
            )
            return

        if op == "vconst":
            dt = imm["elem"].numpy_dtype
            lanes = imm["lanes"]
            values = imm["values"]
            reps = -(-lanes // len(values))
            v = np.tile(np.asarray(values, dtype=dt), reps)[:lanes].copy()
            env[ins.dst.id] = ("i", v)
            return
        if op == "vsplat":
            dt = imm["elem"].numpy_dtype
            lanes = imm["lanes"]
            node = env[ins.srcs[0].id]
            if node[0] == "i":
                env[ins.dst.id] = (
                    "i", np.full(lanes, node[1], dtype=dt)
                )
                return
            col = self._batch_scalar(node, dt, st)
            env[ins.dst.id] = (
                "b", np.repeat(col, lanes).reshape(k, lanes)
            )
            return
        if op == "vaffine":
            na = env[ins.srcs[0].id]
            nb = env[ins.srcs[1].id]
            if na[0] != "i" or nb[0] != "i":
                raise _Bail(dead=True)
            dt = imm["elem"].numpy_dtype
            T = dt.type
            idx = np.arange(imm["lanes"], dtype=dt)
            env[ins.dst.id] = (
                "i", (T(na[1]) + idx * T(nb[1])).astype(dt)
            )
            return

        if op in _VECTOR_BIN:
            dt = imm["elem"].numpy_dtype
            canon = _canon(op)
            na = env[ins.srcs[0].id]
            nb = env[ins.srcs[1].id]
            a = self._vec_operand(na)
            b = self._vec_operand(nb)
            if canon == "add":
                r = a + b
            elif canon == "sub":
                r = a - b
            elif canon == "mul":
                r = a * b
            else:
                r = _BIN_FUNCS[canon](a, b, dt)
            r = np.asarray(r, dtype=dt)
            kind = "i" if na[0] == "i" and nb[0] == "i" else "b"
            env[ins.dst.id] = (kind, r)
            return
        if op in _VECTOR_UN:
            dt = imm["elem"].numpy_dtype
            node = env[ins.srcs[0].id]
            a = self._vec_operand(node)
            r = np.asarray(_UN_FUNCS[_canon(op)](a, dt), dtype=dt)
            env[ins.dst.id] = (node[0], r)
            return
        if op == "vcmp":
            na = env[ins.srcs[0].id]
            nb = env[ins.srcs[1].id]
            a = self._vec_operand(na)
            b = self._vec_operand(nb)
            r = _CMP[imm["op"]](a, b).astype(np.int8)
            kind = "i" if na[0] == "i" and nb[0] == "i" else "b"
            env[ins.dst.id] = (kind, r)
            return
        if op == "vselect":
            nc = env[ins.srcs[0].id]
            na = env[ins.srcs[1].id]
            nb = env[ins.srcs[2].id]
            c = self._vec_operand(nc)
            a = self._vec_operand(na)
            b = self._vec_operand(nb)
            inv = nc[0] == "i" and na[0] == "i" and nb[0] == "i"
            if not inv:
                da = getattr(a, "dtype", None)
                if da is None or da != getattr(b, "dtype", None):
                    raise _Bail(dead=True)
            r = np.where(c.astype(bool), a, b)
            env[ins.dst.id] = ("i" if inv else "b", r)
            return
        if op == "vcvt":
            to = imm["to"]
            dt = to.numpy_dtype
            node = env[ins.srcs[0].id]
            a = self._vec_operand(node)
            r = a.astype(dt) if to.is_float else np.trunc(a).astype(dt)
            env[ins.dst.id] = (node[0], r)
            return

        raise _Bail(dead=True)

    # -- memory safety and commit ---------------------------------------

    @staticmethod
    def _check_mem(loads, stores, k):
        """Reject any load/store or store/store overlap the batch would
        reorder.

        The batch runs each instruction for *all* iterations at once, so
        a store is safe against a load only if the load happened earlier
        in the body **and** covers exactly the same strided interval
        (classic load-modify-store); two stores only if they are disjoint
        or write exactly the same interval (program order decides).
        Aliasing is keyed on the underlying raw byte array (``id()`` at
        run time only — nothing here reaches the generated source).
        """
        for si, s_ in enumerate(stores):
            sid, _, slo, scoef, sw, spos = s_[:6]
            s_end = slo + (k - 1) * scoef + sw
            for lid, llo, lcoef, lw, lpos in loads:
                if lid != sid:
                    continue
                l_end = llo + (k - 1) * lcoef + lw
                if l_end <= slo or llo >= s_end:
                    continue
                if lpos < spos and (llo, lcoef, lw) == (slo, scoef, sw):
                    continue
                raise _Bail()
            for s2 in stores[si + 1:]:
                if s2[0] != sid:
                    continue
                s2_end = s2[2] + (k - 1) * s2[3] + s2[4]
                if s2_end <= slo or s2[2] >= s_end:
                    continue
                if (s2[2], s2[3], s2[4]) == (slo, scoef, sw):
                    continue
                raise _Bail()

    @staticmethod
    def _commit(stores, k):
        """Apply deferred stores in program order (post-walk, so a bail
        can never leave memory half-written)."""
        for _, raw, lo, coef, _w, _pos, dt, lanes, payload in stores:
            view = raw[lo:lo + k * coef].view(dt)
            if lanes is None:
                view[:] = payload
            else:
                view.reshape(k, lanes)[:] = payload


class CodegenCode:
    """An :class:`MFunction` translated to compiled Python source.

    ``source`` holds the deterministic generated module text (the
    cross-process determinism test hashes it); :meth:`run` mirrors
    :meth:`ThreadedCode.run <repro.machine.threaded.ThreadedCode.run>`
    argument-for-argument.  Like the threaded engine, an instance is
    stateful (array cells) and not safe for concurrent ``run`` calls.
    """

    def __init__(self, mfunc: MFunction, target: Target,
                 count_ops: bool = False):
        self.mfunc = mfunc
        self.target = target
        self.count_ops = count_ops
        self._cells: list = [[None] for _ in mfunc.arrays]
        emitter = _Emitter(mfunc, target, count_ops, self._cells)
        self.source, ns = emitter.build()
        self.plans = emitter.plans
        self._block_op_counts = emitter.block_op_counts
        self._param_convs = [
            (name, type_.numpy_dtype.type)
            for name, type_, _reg in mfunc.scalar_params
        ]
        code = compile(
            self.source, f"<codegen:{mfunc.name}:{target.name}>", "exec"
        )
        exec(code, ns)
        self._fn = ns["_kernel"]

    def run(self, scalar_args=None, arrays=None,
            max_instructions: int = 500_000_000) -> RunResult:
        """Execute; bit-identical to :meth:`repro.machine.vm.VM.run`."""
        scalar_args = scalar_args or {}
        arrays = arrays or {}
        mfunc = self.mfunc
        bufs = []
        for i, slot in enumerate(mfunc.arrays):
            buf = arrays.get(slot.name)
            if buf is None:
                raise VMError(
                    f"array parameter {slot.name!r} not bound"
                )
            self._cells[i][0] = buf
            bufs.append(buf)
        vals = []
        for name, conv in self._param_convs:
            if name not in scalar_args:
                raise VMError(f"scalar parameter {name!r} not bound")
            vals.append(conv(scalar_args[name]))
        out = self._fn(max_instructions, {}, *vals, *bufs)
        if not self.count_ops:
            return RunResult(out[0], out[1], out[2], {})
        counts: Counter[str] = Counter()
        for entered, oc in zip(out[3], self._block_op_counts):
            if entered:
                for opname, c in oc.items():
                    counts[opname] += c * entered
        return RunResult(out[0], out[1], out[2], dict(counts))


def translate(mfunc: MFunction, target: Target,
              count_ops: bool = False) -> CodegenCode:
    """Translate ``mfunc`` into compiled Python source for ``target``.

    The result is reusable across runs (and caches per ``(engine,
    count_ops)`` under :meth:`CompiledKernel.translated
    <repro.jit.compilers.CompiledKernel.translated>`).
    """
    return CodegenCode(mfunc, target, count_ops)
