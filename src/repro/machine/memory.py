"""Byte-addressed memory model with explicit alignment.

Each kernel array is backed by an :class:`ArrayBuffer`: a padded byte buffer
whose *base alignment* is controlled by the runtime.  The split-compilation
story hinges on this: the offline compiler must not assume bases are
aligned, while a JIT that controls allocation can guarantee 32-byte bases
and fold the ``bases_aligned`` version guard (§III-B.c).

Buffers are over-allocated by a guard region so the AltiVec-style
floor-aligned load of the last vector (``align_load`` reading up to VS-1
bytes past the data) stays in bounds, just as GCC-for-AltiVec relies on
padded allocation.
"""

from __future__ import annotations

import numpy as np

from ..ir.types import ScalarType

__all__ = ["ArrayBuffer", "GUARD_BYTES"]

#: Over-allocation on both sides of the data (>= the largest VS).
GUARD_BYTES = 64


class ArrayBuffer:
    """A typed, alignment-aware memory buffer.

    Attributes:
        elem: element scalar type.
        count: number of elements.
        base_misalign: the base address modulo 32 this buffer simulates.
            0 models an allocator that aligns arrays (what our JIT runtimes
            and GCC-for-globals do); nonzero models arbitrary malloc.
    """

    def __init__(
        self,
        elem: ScalarType,
        count: int,
        base_misalign: int = 0,
        data: np.ndarray | None = None,
    ) -> None:
        if not 0 <= base_misalign < 32:
            raise ValueError("base_misalign must be in [0, 32)")
        self.elem = elem
        self.count = count
        self.base_misalign = base_misalign
        nbytes = count * elem.size
        self._raw = np.zeros(GUARD_BYTES + nbytes + GUARD_BYTES, dtype=np.uint8)
        # Position the logical base so that base % 32 == base_misalign.
        self._base = GUARD_BYTES - (GUARD_BYTES % 32) + base_misalign
        if self._base < 0:
            self._base += 32
        self.nbytes = nbytes
        if data is not None:
            self.write_elements(data)

    # -- typed element access (host-side setup/verification) ---------------

    def write_elements(self, values) -> None:
        arr = np.asarray(values, dtype=self.elem.numpy_dtype).ravel()
        if arr.size != self.count:
            raise ValueError(
                f"expected {self.count} elements, got {arr.size}"
            )
        self._raw[self._base : self._base + self.nbytes] = arr.view(np.uint8)

    def read_elements(self) -> np.ndarray:
        view = self._raw[self._base : self._base + self.nbytes]
        return view.view(self.elem.numpy_dtype).copy()

    # -- byte-addressed machine access --------------------------------------

    def base_address(self) -> int:
        """The simulated base address (only its value mod 32 matters)."""
        return self._base

    def load_bytes(self, offset: int, nbytes: int) -> np.ndarray:
        start = self._base + offset
        raw = self._raw
        if start < 0 or start + nbytes > raw.shape[0]:
            raise IndexError(
                f"out-of-bounds access: offset {offset}, {nbytes} bytes "
                f"(array of {self.nbytes} data bytes + {GUARD_BYTES} guard)"
            )
        return raw[start : start + nbytes]

    def load_vector(self, offset: int, dtype: np.dtype, lanes: int) -> np.ndarray:
        # Inlined load_bytes: this is the VM engines' hottest memory path.
        nbytes = dtype.itemsize * lanes
        start = self._base + offset
        raw = self._raw
        if start < 0 or start + nbytes > raw.shape[0]:
            raise IndexError(
                f"out-of-bounds access: offset {offset}, {nbytes} bytes "
                f"(array of {self.nbytes} data bytes + {GUARD_BYTES} guard)"
            )
        return raw[start : start + nbytes].view(dtype).copy()

    def store_vector(self, offset: int, values: np.ndarray) -> None:
        if not values.flags["C_CONTIGUOUS"]:
            values = np.ascontiguousarray(values)
        raw = values.view(np.uint8)
        start = self._base + offset
        dst = self._raw
        if start < 0 or start + raw.size > dst.shape[0]:
            raise IndexError(
                f"out-of-bounds store: offset {offset}, {raw.size} bytes"
            )
        dst[start : start + raw.size] = raw

    def load_scalar(self, offset: int, dtype: np.dtype):
        nbytes = dtype.itemsize
        start = self._base + offset
        raw = self._raw
        if start < 0 or start + nbytes > raw.shape[0]:
            raise IndexError(
                f"out-of-bounds access: offset {offset}, {nbytes} bytes "
                f"(array of {self.nbytes} data bytes + {GUARD_BYTES} guard)"
            )
        # Unaligned element view: numpy handles the unaligned read; the
        # scalar it returns is a value copy, never a view of the buffer.
        return raw[start : start + nbytes].view(dtype)[0]

    def store_scalar(self, offset: int, value, dtype: np.dtype) -> None:
        nbytes = dtype.itemsize
        start = self._base + offset
        dst = self._raw
        if start < 0 or start + nbytes > dst.shape[0]:
            raise IndexError(
                f"out-of-bounds store: offset {offset}, {nbytes} bytes"
            )
        dst[start : start + nbytes].view(dtype)[0] = value

    def address_of(self, offset: int) -> int:
        """Absolute simulated address of ``base + offset`` (for alignment
        computations like lvsr)."""
        return self._base + offset

    def overlaps(self, other: "ArrayBuffer") -> bool:
        """Runtime overlap test used by ``no_alias`` guards.

        Distinct buffers never overlap; aliasing is modelled by sharing the
        raw backing (see :meth:`alias_view`).
        """
        return self._raw is other._raw

    def alias_view(self, elem: ScalarType, count: int, byte_offset: int = 0):
        """Create an overlapping view for may-alias experiments."""
        view = ArrayBuffer.__new__(ArrayBuffer)
        view.elem = elem
        view.count = count
        view.base_misalign = (self.base_misalign + byte_offset) % 32
        view._raw = self._raw
        view._base = self._base + byte_offset
        view.nbytes = count * elem.size
        return view

    def __repr__(self) -> str:
        return (
            f"ArrayBuffer({self.elem} x {self.count}, "
            f"base%32={self.base_misalign})"
        )
