"""Structured IR -> flat machine IR translation.

Runs after the online compiler's materialization: every instruction left is
either scalar or an exact machine-dialect op, so this stage is purely
mechanical — loops become labels and branches, loop-carried values become
register copies, memory element indices become byte-address arithmetic.

Two quality knobs reproduce the Mono/gcc4cli code-generation gap the paper
discusses (addressing modes, constant handling):

* ``scaled_addressing`` — fold the element-size scaling into a single
  address instruction (x86-style ``lea``) instead of const+shift+add.
* ``rematerialize_consts`` — re-emit constants at every use (Mono) instead
  of caching them in a register.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..ir import (
    Argument,
    ArrayRef,
    BinOp,
    Block,
    BlockArg,
    Cmp,
    Const,
    Convert,
    ForLoop,
    Function,
    If,
    Instr,
    Load,
    Return,
    Select,
    Store,
    UnOp,
    Value,
    Yield,
)
from ..ir.types import BOOL, I32, I64, ScalarType, VectorType
from . import ops as mops
from .mir import FPR, GPR, VEC, ArraySlot, MFunction, MInstr, VReg

__all__ = ["flatten", "FlattenOptions"]

_label_ids = itertools.count()


@dataclass
class FlattenOptions:
    scaled_addressing: bool = False
    rematerialize_consts: bool = False


def _rclass(t) -> str:
    if isinstance(t, VectorType):
        return VEC
    return FPR if t.is_float else GPR


class _Flattener:
    def __init__(self, fn: Function, options: FlattenOptions) -> None:
        self.fn = fn
        self.options = options
        self.mf = MFunction(fn.name)
        self.loop_depth = 0
        self.regs: dict[int, VReg] = {}
        self.const_cache: dict[tuple, VReg] = {}
        # Cached constants are emitted into a prologue so their single
        # definition dominates every use regardless of control flow.
        self.const_prologue: list[MInstr] = []

    def run(self) -> MFunction:
        for p in self.fn.scalar_params:
            reg = VReg.fresh(_rclass(p.type), p.type)
            self.regs[p.id] = reg
            self.mf.scalar_params.append((p.name, p.type, reg))
        for a in self.fn.array_params:
            self.mf.arrays.append(ArraySlot(a.name, a.elem, a.may_alias))
        self.block(self.fn.body)
        self.mf.instrs = self.const_prologue + self.mf.instrs
        return self.mf

    # -- value plumbing ------------------------------------------------------

    def reg_of(self, v: Value) -> VReg:
        if isinstance(v, Const):
            key = (v.value, v.type.name)
            if self.options.rematerialize_consts:
                reg = VReg.fresh(_rclass(v.type), v.type)
                self.mf.emit("const", reg, value=v.value, type=v.type)
                return reg
            if key in self.const_cache:
                return self.const_cache[key]
            reg = VReg.fresh(_rclass(v.type), v.type)
            self.const_prologue.append(
                MInstr("const", reg, [], {"value": v.value, "type": v.type})
            )
            self.const_cache[key] = reg
            return reg
        try:
            return self.regs[v.id]
        except KeyError:
            raise KeyError(f"no register for {v!r} in {self.fn.name}") from None

    def new_reg(self, v: Value) -> VReg:
        reg = VReg.fresh(_rclass(v.type), v.type)
        self.regs[v.id] = reg
        return reg

    def label(self, hint: str) -> str:
        return f"{hint}_{next(_label_ids)}"

    # -- addressing ---------------------------------------------------------

    def byte_address(self, array: ArrayRef, index: Value) -> VReg:
        """Byte offset register for element ``index`` of ``array``."""
        idx = self.reg_of(index)
        esize = array.elem.size
        addr = VReg.fresh(GPR, I64)
        if esize == 1:
            self.mf.emit("mov", addr, [idx])
        elif self.options.scaled_addressing:
            self.mf.emit("lea", addr, [idx], scale=esize, offset=0)
        else:
            shift = self.reg_of(Const(esize.bit_length() - 1, I32))
            self.mf.emit("shl", addr, [idx, shift], type=I64)
        return addr

    def linear_index(self, array: ArrayRef, indices: list[Value]) -> Value:
        """Multi-dim indices are pre-linearized by materialization for
        vector ops; scalar Load/Store still carry per-dim indices, so emit
        the row-major arithmetic here and return a pseudo-value."""
        if len(indices) == 1:
            return indices[0]
        # Horner scheme: acc = ((i0*d1 + i1)*d2 + i2)...
        acc_reg = VReg.fresh(GPR, I32)
        self.mf.emit("mov", acc_reg, [self.reg_of(indices[0])])
        for k, idx in enumerate(indices[1:], start=1):
            dim = array.shape[k]
            dim_reg = self.reg_of(Const(dim, I32))
            tmp = VReg.fresh(GPR, I32)
            self.mf.emit("mul", tmp, [acc_reg, dim_reg], type=I32)
            acc_reg2 = VReg.fresh(GPR, I32)
            self.mf.emit("add", acc_reg2, [tmp, self.reg_of(idx)], type=I32)
            acc_reg = acc_reg2
        holder = Value(I32)
        self.regs[holder.id] = acc_reg
        return holder

    # -- structure ---------------------------------------------------------

    def block(self, block: Block) -> None:
        for instr in block.instrs:
            self.instr(instr)

    def for_loop(self, loop: ForLoop) -> None:
        self.loop_depth += 1
        iv = VReg.fresh(GPR, I32)
        self.mf.emit("mov", iv, [self.reg_of(loop.lower)])
        self.regs[loop.iv.id] = iv
        carried_regs = []
        for arg, init in zip(loop.carried, loop.init_values):
            reg = VReg.fresh(_rclass(arg.type), arg.type)
            self.mf.emit("mov", reg, [self.reg_of(init)])
            self.regs[arg.id] = reg
            carried_regs.append(reg)
        head = self.label(f"head_{loop.iv.name}")
        exit_ = self.label(f"exit_{loop.iv.name}")
        upper = self.reg_of(loop.upper)
        step = self.reg_of(loop.step)
        # Loop-control and carried values are the allocator's pin
        # candidates; deeper loops matter more.
        pins = self.mf.meta.setdefault("pinned", [])
        for reg in (iv, upper, step, *carried_regs):
            pins.append((self.loop_depth, reg.id, reg.rclass))
        self.mf.emit("label", name=head)
        cond = VReg.fresh(GPR, BOOL)
        self.mf.emit("cmp", cond, [iv, upper], op="lt")
        self.mf.emit("brfalse", srcs=[cond], label=exit_)
        term = loop.body.terminator
        for instr in loop.body.instrs:
            if instr is term:
                break
            self.instr(instr)
        # Parallel copy of yields into carried registers (via temps).
        assert isinstance(term, Yield)
        temps = []
        for v in term.values:
            t = VReg.fresh(_rclass(v.type), v.type)
            self.mf.emit("mov", t, [self.reg_of(v)])
            temps.append(t)
        for reg, t in zip(carried_regs, temps):
            self.mf.emit("mov", reg, [t])
        self.mf.emit("add", iv, [iv, step], type=I32)
        self.mf.emit("br", label=head)
        self.mf.emit("label", name=exit_)
        for res, reg in zip(loop.results, carried_regs):
            self.regs[res.id] = reg
        self.loop_depth -= 1

    def if_op(self, instr: If) -> None:
        cond = self.reg_of(instr.cond)
        else_l = self.label("else")
        end_l = self.label("endif")
        result_regs = [VReg.fresh(_rclass(r.type), r.type) for r in instr.results]
        self.mf.emit("brfalse", srcs=[cond], label=else_l)
        self._arm(instr.then_block, result_regs)
        self.mf.emit("br", label=end_l)
        self.mf.emit("label", name=else_l)
        self._arm(instr.else_block, result_regs)
        self.mf.emit("label", name=end_l)
        for r, reg in zip(instr.results, result_regs):
            self.regs[r.id] = reg

    def _arm(self, block: Block, result_regs: list[VReg]) -> None:
        term = block.terminator
        for instr in block.instrs:
            if instr is term and isinstance(term, Yield):
                break
            self.instr(instr)
        if isinstance(term, Yield):
            for reg, v in zip(result_regs, term.values):
                self.mf.emit("mov", reg, [self.reg_of(v)])

    # -- instructions -------------------------------------------------------

    def instr(self, instr: Instr) -> None:
        if isinstance(instr, ForLoop):
            self.for_loop(instr)
            return
        if isinstance(instr, If):
            self.if_op(instr)
            return
        if isinstance(instr, Return):
            if instr.value is not None:
                self.mf.emit("ret", srcs=[self.reg_of(instr.value)])
                self.mf.ret = self.reg_of(instr.value)
            else:
                self.mf.emit("ret")
            return
        if isinstance(instr, BinOp):
            if isinstance(instr.type, VectorType):
                self.mf.emit(
                    "v" + instr.op,
                    self.new_reg(instr),
                    [self.reg_of(instr.lhs), self.reg_of(instr.rhs)],
                    elem=instr.type.elem,
                    lanes=instr.type.lanes,
                )
            else:
                self.mf.emit(
                    instr.op,
                    self.new_reg(instr),
                    [self.reg_of(instr.lhs), self.reg_of(instr.rhs)],
                    type=instr.type,
                )
            return
        if isinstance(instr, UnOp):
            if isinstance(instr.type, VectorType):
                self.mf.emit(
                    "v" + instr.op,
                    self.new_reg(instr),
                    [self.reg_of(instr.value)],
                    elem=instr.type.elem,
                    lanes=instr.type.lanes,
                )
            else:
                self.mf.emit(
                    instr.op,
                    self.new_reg(instr),
                    [self.reg_of(instr.value)],
                    type=instr.type,
                )
            return
        if isinstance(instr, Cmp):
            op = "vcmp" if isinstance(instr.lhs.type, VectorType) else "cmp"
            imm = {"op": instr.op}
            if op == "vcmp":
                imm["lanes"] = instr.lhs.type.lanes
            self.mf.emit(
                op,
                self.new_reg(instr),
                [self.reg_of(instr.lhs), self.reg_of(instr.rhs)],
                **imm,
            )
            return
        if isinstance(instr, Select):
            op = "vselect" if isinstance(instr.type, VectorType) else "select"
            self.mf.emit(
                op,
                self.new_reg(instr),
                [
                    self.reg_of(instr.cond),
                    self.reg_of(instr.if_true),
                    self.reg_of(instr.if_false),
                ],
            )
            return
        if isinstance(instr, Convert):
            self.mf.emit(
                "cvt", self.new_reg(instr), [self.reg_of(instr.value)], to=instr.to,
                type=instr.to,
            )
            return
        if isinstance(instr, Load):
            index = self.linear_index(instr.array, instr.indices)
            addr = self.byte_address(instr.array, index)
            self.mf.emit(
                "load",
                self.new_reg(instr),
                [addr],
                array=instr.array.name,
                type=instr.array.elem,
            )
            return
        if isinstance(instr, Store):
            index = self.linear_index(instr.array, instr.indices)
            addr = self.byte_address(instr.array, index)
            self.mf.emit(
                "store",
                srcs=[addr, self.reg_of(instr.value)],
                array=instr.array.name,
                type=instr.array.elem,
            )
            return
        if isinstance(instr, mops.MVLoad):
            addr = self.byte_address(instr.array, instr.index)
            vt = instr.type
            self.mf.emit(
                f"vload_{instr.mode}",
                self.new_reg(instr),
                [addr],
                array=instr.array.name,
                elem=vt.elem,
                lanes=vt.lanes,
            )
            return
        if isinstance(instr, mops.MVStore):
            addr = self.byte_address(instr.array, instr.index)
            self.mf.emit(
                f"vstore_{instr.mode}",
                srcs=[addr, self.reg_of(instr.value)],
                array=instr.array.name,
            )
            return
        if isinstance(instr, mops.MLvsr):
            addr = self.byte_address(instr.array, instr.index)
            self.mf.emit(
                "lvsr", self.new_reg(instr), [addr], array=instr.array.name
            )
            return
        if isinstance(instr, mops.MVPerm):
            self.mf.emit(
                "vperm",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
            )
            return
        if isinstance(instr, mops.MVSplat):
            vt = instr.type
            self.mf.emit(
                "vsplat",
                self.new_reg(instr),
                [self.reg_of(instr.operands[0])],
                elem=vt.elem,
                lanes=vt.lanes,
            )
            return
        if isinstance(instr, mops.MVAffine):
            vt = instr.type
            self.mf.emit(
                "vaffine",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
            )
            return
        if isinstance(instr, mops.MVConst):
            vt = instr.type
            self.mf.emit(
                "vconst",
                self.new_reg(instr),
                [],
                elem=vt.elem,
                lanes=vt.lanes,
                values=instr.values,
            )
            return
        if isinstance(instr, mops.MVInsert0):
            self.mf.emit(
                "vinsert0",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
            )
            return
        if isinstance(instr, mops.MVReduce):
            self.mf.emit(
                "vreduce",
                self.new_reg(instr),
                [self.reg_of(instr.operands[0])],
                kind=instr.kind,
            )
            return
        if isinstance(instr, mops.MVDot):
            vt = instr.type
            self.mf.emit(
                "vdot",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
            )
            return
        if isinstance(instr, mops.MVWidenMult):
            vt = instr.type
            self.mf.emit(
                "vwidenmul",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
                half=instr.half,
            )
            return
        if isinstance(instr, mops.MVPack):
            vt = instr.type
            self.mf.emit(
                "vpack",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
            )
            return
        if isinstance(instr, mops.MVUnpack):
            vt = instr.type
            self.mf.emit(
                "vunpack",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
                half=instr.half,
            )
            return
        if isinstance(instr, mops.MVCvt):
            vt = instr.type
            self.mf.emit(
                "vcvt",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                to=vt.elem,
                lanes=vt.lanes,
            )
            return
        if isinstance(instr, mops.MVExtract):
            vt = instr.type
            self.mf.emit(
                "vextract",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
                stride=instr.stride,
                offset=instr.offset,
            )
            return
        if isinstance(instr, mops.MVInterleave):
            vt = instr.type
            self.mf.emit(
                "vinterleave",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                elem=vt.elem,
                lanes=vt.lanes,
                half=instr.half,
            )
            return
        if isinstance(instr, mops.MArrOverlap):
            a1, a2 = instr.operands
            self.mf.emit(
                "arr_overlap", self.new_reg(instr), [], a1=a1.name, a2=a2.name
            )
            return
        if isinstance(instr, mops.MArrAligned):
            self.mf.emit(
                "arr_aligned",
                self.new_reg(instr),
                [],
                array=instr.operands[0].name,
                align=instr.align,
            )
            return
        if isinstance(instr, mops.MLibCall):
            vt = instr.type
            imm = dict(instr.imm)
            imm.setdefault("elem", vt.elem if isinstance(vt, VectorType) else vt)
            if isinstance(vt, VectorType):
                imm.setdefault("lanes", vt.lanes)
            self.mf.emit(
                "call_lib",
                self.new_reg(instr),
                [self.reg_of(o) for o in instr.operands],
                sem=instr.sem,
                **imm,
            )
            return
        raise ValueError(f"flatten: unhandled instruction {instr!r}")


def flatten(fn: Function, options: FlattenOptions | None = None) -> MFunction:
    """Flatten a fully materialized function to machine IR."""
    return _Flattener(fn, options or FlattenOptions()).run()
