"""Threaded-code execution engine: pre-decoded closure dispatch.

The reference interpreter (:mod:`repro.machine.vm`) re-decodes every
instruction on every execution: opcode string compares down a long
``if/elif`` chain, dict-based register files keyed by virtual register id,
a cost-table lookup per instruction, and numpy scalar re-boxing of every
immediate.  That is the classic slow-interpreter shape.  This module
removes all of it with a **one-time translation pass**:

* every :class:`~repro.machine.mir.MInstr` becomes one specialized Python
  closure with its immediates (dtypes, constants, lane counts, addressing
  scale/offset, array bindings) captured in the closure environment —
  "threaded code" in the Forth/direct-threading sense;
* virtual register ids are mapped to dense list slots, so a register
  access is one ``list`` index instead of a dict hash;
* label targets are resolved to basic-block indices at translate time, so
  a branch is an index assignment, not a label-table lookup;
* instructions are grouped into **basic blocks** whose cycle cost,
  instruction count, x87 scalar-FP surcharge, and per-op counts are
  pre-aggregated, so straight-line runs charge one precomputed sum per
  block instead of a cost-dict lookup per instruction.

Cycle parity with the reference interpreter is guaranteed by construction:

* the per-block cycle sum adds exactly the terms the reference adds, and
  every cost is a small dyadic rational (multiples of 0.5), so float
  addition is exact and re-association cannot change the total;
* the x87 floating-point surcharge depends only on static instruction
  properties (opcode + immediate type), so it is folded into the block
  sums at translate time;
* op semantics are shared with the reference VM (``_BIN_FUNCS`` /
  ``_UN_FUNCS`` / ``_CMP`` in :mod:`repro.machine.vm`), and memory
  accesses go through the same :class:`ArrayBuffer` methods, so values,
  alignment traps, and bounds errors are identical;
* when a block would cross the instruction budget, the engine replays
  that block per instruction with per-instruction budget checks, so the
  trap raised (budget exceeded vs. an earlier alignment fault inside the
  block) is exactly the reference VM's.

``tests/test_threaded_vm.py`` differential-tests the two engines across
the full kernel suite x all targets x all online compilers.

A :class:`ThreadedCode` object is stateful (array cells, spill store) and
therefore not thread-safe; the parallel experiment harness parallelizes
across *processes*, which is safe.
"""

from __future__ import annotations

import operator
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .. import faults
from ..ir.types import ScalarType
from ..targets.base import Target
from .blocks import TERMINATORS, instr_cost, partition
from .memory import GUARD_BYTES, ArrayBuffer
from .mir import MFunction, MInstr
from .vm import (
    _BIN_FUNCS,
    _CMP,
    _SCALAR_BIN,
    _SCALAR_UN,
    _UN_FUNCS,
    _VECTOR_BIN,
    _VECTOR_UN,
    _canon,
    RunResult,
    VMError,
)

__all__ = ["ThreadedCode", "ThreadedVM", "translate"]

#: branch-predicate comparisons; ``a < b`` on numpy scalars dispatches to
#: the same ufunc as ``np.less`` and is substantially cheaper to call.
_CMP_OPERATORS = {
    "eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
    "le": operator.le, "gt": operator.gt, "ge": operator.ge,
}

#: shared immutable numpy scalars for predicate results (numpy scalars are
#: immutable, so reusing them is indistinguishable from fresh boxing).
_I8_ZERO = np.int8(0)
_I8_ONE = np.int8(1)


def _const_next(k: int):
    """Terminator for unconditional control flow (br / fallthrough)."""

    def nxt(regs, k=k):
        return k

    return nxt


@dataclass
class _Block:
    """One pre-decoded basic block."""

    count: int                      # instructions (incl. label/terminator)
    cycles: float                   # pre-aggregated cycle sum (incl. x87)
    steps: tuple                    # non-control closures, in order
    next: object                    # terminator closure -> next block index
    op_counts: dict                 # pre-aggregated per-op counts
    replay: list = field(default_factory=list)  # (action|None) per instr


class ThreadedCode:
    """An :class:`MFunction` translated to threaded code for one target."""

    def __init__(self, mfunc: MFunction, target: Target,
                 count_ops: bool = False) -> None:
        self.mfunc = mfunc
        self.target = target
        self.count_ops = count_ops
        self._slot_of: dict[int, int] = {}
        self._cells: dict[str, list] = {}
        self._spills: dict[int, object] = {}
        self._retbox: list = [None]
        self._param_binds: list[tuple[int, object, str]] = []
        self._blocks: list[_Block] = []
        self._build()
        #: hot-loop view of the blocks: (count, cycles, steps, next).
        self._dispatch = [
            (b.count, b.cycles, b.steps, b.next) for b in self._blocks
        ]

    # -- translation --------------------------------------------------------

    def _slot(self, reg) -> int:
        s = self._slot_of.get(reg.id)
        if s is None:
            s = self._slot_of[reg.id] = len(self._slot_of)
        return s

    def _cell(self, name: str) -> list:
        cell = self._cells.get(name)
        if cell is None:
            cell = self._cells[name] = [None]
        return cell

    def _build(self) -> None:
        mfunc = self.mfunc
        for name, type_, reg in mfunc.scalar_params:
            self._param_binds.append(
                (self._slot(reg), type_.numpy_dtype.type, name)
            )
        for slot in mfunc.arrays:
            self._cell(slot.name)

        instrs = mfunc.instrs
        n = len(instrs)
        labels = mfunc.labels()

        # Basic-block partition and per-instruction costs are shared with
        # the codegen engine (repro.machine.blocks), which is what keeps
        # the two engines' accounting identical by construction.
        starts, block_at = partition(instrs)

        cost = self.target.cost
        x87 = bool(mfunc.meta.get("x87"))

        for bi, s in enumerate(starts):
            e = starts[bi + 1] if bi + 1 < len(starts) else n
            body = instrs[s:e]
            cycles = 0.0
            op_counts: Counter[str] = Counter()
            steps: list = []
            replay: list = []
            nxt = None
            for j, ins in enumerate(body):
                op = ins.op
                cycles += instr_cost(ins, cost, x87)
                op_counts[op] += 1
                if op == "label":
                    replay.append(None)
                    continue
                if op in TERMINATORS:
                    # The terminator is always the last instruction of the
                    # block by construction.
                    assert j == len(body) - 1
                    nxt = self._compile_terminator(
                        ins, labels, block_at, bi, e, n
                    )
                    replay.append(None)
                    continue
                step = self._compile_instr(ins)
                steps.append(step)
                replay.append(step)
            if nxt is None:
                # Fallthrough into the next block (or off the end).
                nxt = _const_next(bi + 1 if e < n else -1)
            self._blocks.append(
                _Block(len(body), cycles, tuple(steps), nxt,
                       dict(op_counts), replay)
            )

    def _compile_terminator(self, ins: MInstr, labels, block_at,
                            bi: int, e: int, n: int):
        op = ins.op
        if op == "br":
            return _const_next(block_at[labels[ins.imm["label"]]])
        if op == "ret":
            retbox = self._retbox
            if ins.srcs:
                s = self._slot(ins.srcs[0])

                def nxt(regs, retbox=retbox, s=s):
                    retbox[0] = regs[s]
                    return -1
            else:

                def nxt(regs, retbox=retbox):
                    retbox[0] = None
                    return -1
            return nxt
        tk = block_at[labels[ins.imm["label"]]]
        fk = bi + 1 if e < n else -1
        s = self._slot(ins.srcs[0])
        if op == "brtrue":

            def nxt(regs, s=s, tk=tk, fk=fk):
                return tk if regs[s] else fk
        else:  # brfalse

            def nxt(regs, s=s, tk=tk, fk=fk):
                return fk if regs[s] else tk
        return nxt

    # one long factory — runs once per instruction at translate time
    def _compile_instr(self, ins: MInstr):  # noqa: C901
        op = ins.op
        imm = ins.imm
        slot = self._slot
        d = slot(ins.dst) if ins.dst is not None else None
        ss = [slot(r) for r in ins.srcs]
        vs = self.target.vector_size

        if op == "const":
            v = imm["type"].numpy_dtype.type(imm["value"])

            def step(regs, d=d, v=v):
                regs[d] = v
            return step

        if op == "mov":

            def step(regs, d=d, s=ss[0]):
                regs[d] = regs[s]
            return step

        if op == "lea":
            scale = imm.get("scale", 1)
            offset = imm.get("offset", 0)
            # Address arithmetic stays in exact Python-int space, like the
            # reference's int(...) * scale + offset; the np.int64 boxing is
            # deferred to consumers (every consumer either re-boxes through
            # its own dtype cast or takes int(...) again).
            if scale == 1 and offset == 0:

                def step(regs, d=d, s=ss[0]):
                    regs[d] = int(regs[s])
            elif scale == 1:

                def step(regs, d=d, s=ss[0], offset=offset):
                    regs[d] = int(regs[s]) + offset
            else:

                def step(regs, d=d, s=ss[0], scale=scale, offset=offset):
                    regs[d] = int(regs[s]) * scale + offset
            return step

        if op in _SCALAR_BIN:
            dt = imm["type"].numpy_dtype
            T = dt.type
            s0, s1 = ss
            if op == "add":

                def step(regs, d=d, s0=s0, s1=s1, T=T):
                    a = regs[s0]
                    b = regs[s1]
                    if type(a) is not T:
                        a = T(a)
                    if type(b) is not T:
                        b = T(b)
                    regs[d] = a + b
            elif op == "sub":

                def step(regs, d=d, s0=s0, s1=s1, T=T):
                    a = regs[s0]
                    b = regs[s1]
                    if type(a) is not T:
                        a = T(a)
                    if type(b) is not T:
                        b = T(b)
                    regs[d] = a - b
            elif op == "mul":

                def step(regs, d=d, s0=s0, s1=s1, T=T):
                    a = regs[s0]
                    b = regs[s1]
                    if type(a) is not T:
                        a = T(a)
                    if type(b) is not T:
                        b = T(b)
                    regs[d] = a * b
            else:
                fn = _BIN_FUNCS[op]

                def step(regs, d=d, s0=s0, s1=s1, T=T, dt=dt, fn=fn):
                    a = regs[s0]
                    b = regs[s1]
                    if type(a) is not T:
                        a = T(a)
                    if type(b) is not T:
                        b = T(b)
                    regs[d] = fn(a, b, dt)
            return step

        if op in _SCALAR_UN:
            dt = imm["type"].numpy_dtype
            T = dt.type
            fn = _UN_FUNCS[op]

            def step(regs, d=d, s=ss[0], T=T, dt=dt, fn=fn):
                a = regs[s]
                if type(a) is not T:
                    a = T(a)
                regs[d] = fn(a, dt)
            return step

        if op == "cmp":
            fn = _CMP_OPERATORS[imm["op"]]

            def step(regs, d=d, s0=ss[0], s1=ss[1], fn=fn):
                regs[d] = _I8_ONE if fn(regs[s0], regs[s1]) else _I8_ZERO
            return step

        if op == "select":

            def step(regs, d=d, c=ss[0], s1=ss[1], s2=ss[2]):
                regs[d] = regs[s1] if regs[c] else regs[s2]
            return step

        if op == "cvt":
            to: ScalarType = imm["to"]
            T = to.numpy_dtype.type
            if to.is_float:

                def step(regs, d=d, s=ss[0], T=T):
                    regs[d] = T(regs[s])
            else:

                def step(regs, d=d, s=ss[0], T=T):
                    v = regs[s]
                    if isinstance(v, (np.floating, float)):
                        v = int(v)
                    regs[d] = T(np.int64(v))
            return step

        if op == "load":
            name = imm["array"]
            cell = self._cell(name)
            dt = imm["type"].numpy_dtype

            def step(regs, d=d, s=ss[0], cell=cell, dt=dt, name=name):
                if faults.mem_hook is not None:
                    faults.mem_hook("load", name)
                regs[d] = cell[0].load_scalar(int(regs[s]), dt)
            return step

        if op == "store":
            name = imm["array"]
            cell = self._cell(name)
            dt = imm["type"].numpy_dtype

            def step(regs, s0=ss[0], s1=ss[1], cell=cell, dt=dt, name=name):
                if faults.mem_hook is not None:
                    faults.mem_hook("store", name)
                cell[0].store_scalar(int(regs[s0]), regs[s1], dt)
            return step

        if op == "spill_st":
            sp = self._spills
            k = imm["slot"]

            def step(regs, s=ss[0], sp=sp, k=k):
                sp[k] = regs[s]
            return step

        if op == "spill_ld":
            sp = self._spills
            k = imm["slot"]

            def step(regs, d=d, sp=sp, k=k):
                regs[d] = sp[k]
            return step

        if op == "arr_overlap":
            c1 = self._cell(imm["a1"])
            c2 = self._cell(imm["a2"])

            def step(regs, d=d, c1=c1, c2=c2):
                regs[d] = _I8_ONE if c1[0].overlaps(c2[0]) else _I8_ZERO
            return step

        if op == "arr_aligned":
            cell = self._cell(imm["array"])
            align = imm["align"]

            def step(regs, d=d, cell=cell, align=align):
                regs[d] = (
                    _I8_ONE if cell[0].address_of(0) % align == 0
                    else _I8_ZERO
                )
            return step

        # -- vector instructions -------------------------------------------

        if op == "vconst":
            elem: ScalarType = imm["elem"]
            lanes: int = imm["lanes"]
            values = imm["values"]
            reps = -(-lanes // len(values))
            v = np.tile(np.asarray(values, dtype=elem.numpy_dtype), reps)[
                :lanes
            ].copy()

            def step(regs, d=d, v=v):
                regs[d] = v
            return step

        if op == "vsplat":
            dt = imm["elem"].numpy_dtype
            lanes = imm["lanes"]

            def step(regs, d=d, s=ss[0], lanes=lanes, dt=dt):
                regs[d] = np.full(lanes, regs[s], dtype=dt)
            return step

        if op == "vaffine":
            dt = imm["elem"].numpy_dtype
            T = dt.type
            idx = np.arange(imm["lanes"], dtype=dt)

            def step(regs, d=d, s0=ss[0], s1=ss[1], T=T, dt=dt, idx=idx):
                regs[d] = (T(regs[s0]) + idx * T(regs[s1])).astype(dt)
            return step

        if op in ("vload_a", "vload_u", "vload_fa"):
            name = imm["array"]
            cell = self._cell(name)
            dt = imm["elem"].numpy_dtype
            lanes = imm["lanes"]
            # These closures inline ArrayBuffer.load_vector (the engines'
            # hottest memory path); check order and messages replicate the
            # reference VM / ArrayBuffer exactly (alignment trap first,
            # then bounds) and the differential tests enforce it.
            nb = dt.itemsize * lanes
            if op == "vload_a":

                def step(regs, d=d, s=ss[0], cell=cell, dt=dt, nb=nb,
                         vs=vs, name=name):
                    if faults.mem_hook is not None:
                        faults.mem_hook("vload_a", name)
                    buf = cell[0]
                    off = int(regs[s])
                    start = buf._base + off
                    if start % vs != 0:
                        raise VMError(
                            f"aligned vector load from misaligned address "
                            f"(array {name}, offset {off}, "
                            f"addr%{vs}={start % vs})"
                        )
                    raw = buf._raw
                    if start < 0 or start + nb > raw.shape[0]:
                        raise IndexError(
                            f"out-of-bounds access: offset {off}, {nb} "
                            f"bytes (array of {buf.nbytes} data bytes + "
                            f"{GUARD_BYTES} guard)"
                        )
                    regs[d] = raw[start : start + nb].view(dt).copy()
            elif op == "vload_fa":

                def step(regs, d=d, s=ss[0], cell=cell, dt=dt, nb=nb,
                         vs=vs, name=name):
                    if faults.mem_hook is not None:
                        faults.mem_hook("vload_fa", name)
                    buf = cell[0]
                    off = int(regs[s])
                    off -= (buf._base + off) % vs
                    start = buf._base + off
                    raw = buf._raw
                    if start < 0 or start + nb > raw.shape[0]:
                        raise IndexError(
                            f"out-of-bounds access: offset {off}, {nb} "
                            f"bytes (array of {buf.nbytes} data bytes + "
                            f"{GUARD_BYTES} guard)"
                        )
                    regs[d] = raw[start : start + nb].view(dt).copy()
            else:

                def step(regs, d=d, s=ss[0], cell=cell, dt=dt, nb=nb,
                         name=name):
                    if faults.mem_hook is not None:
                        faults.mem_hook("vload_u", name)
                    buf = cell[0]
                    off = int(regs[s])
                    start = buf._base + off
                    raw = buf._raw
                    if start < 0 or start + nb > raw.shape[0]:
                        raise IndexError(
                            f"out-of-bounds access: offset {off}, {nb} "
                            f"bytes (array of {buf.nbytes} data bytes + "
                            f"{GUARD_BYTES} guard)"
                        )
                    regs[d] = raw[start : start + nb].view(dt).copy()
            return step

        if op in ("vstore_a", "vstore_u"):
            name = imm["array"]
            cell = self._cell(name)
            # Inlined ArrayBuffer.store_vector (same messages, same order).
            if op == "vstore_a":

                def step(regs, s0=ss[0], s1=ss[1], cell=cell, vs=vs,
                         name=name):
                    if faults.mem_hook is not None:
                        faults.mem_hook("vstore_a", name)
                    buf = cell[0]
                    off = int(regs[s0])
                    start = buf._base + off
                    if start % vs != 0:
                        raise VMError(
                            f"aligned vector store to misaligned address "
                            f"(array {name}, offset {off})"
                        )
                    values = regs[s1]
                    if not values.flags["C_CONTIGUOUS"]:
                        values = np.ascontiguousarray(values)
                    raw = values.view(np.uint8)
                    dst = buf._raw
                    if start < 0 or start + raw.size > dst.shape[0]:
                        raise IndexError(
                            f"out-of-bounds store: offset {off}, "
                            f"{raw.size} bytes"
                        )
                    dst[start : start + raw.size] = raw
            else:

                def step(regs, s0=ss[0], s1=ss[1], cell=cell, name=name):
                    if faults.mem_hook is not None:
                        faults.mem_hook("vstore_u", name)
                    buf = cell[0]
                    off = int(regs[s0])
                    start = buf._base + off
                    values = regs[s1]
                    if not values.flags["C_CONTIGUOUS"]:
                        values = np.ascontiguousarray(values)
                    raw = values.view(np.uint8)
                    dst = buf._raw
                    if start < 0 or start + raw.size > dst.shape[0]:
                        raise IndexError(
                            f"out-of-bounds store: offset {off}, "
                            f"{raw.size} bytes"
                        )
                    dst[start : start + raw.size] = raw
            return step

        if op == "lvsr":
            cell = self._cell(imm["array"])

            def step(regs, d=d, s=ss[0], cell=cell, vs=vs):
                regs[d] = np.int64(cell[0].address_of(int(regs[s])) % vs)
            return step

        if op == "vperm":

            def step(regs, d=d, s0=ss[0], s1=ss[1], s2=ss[2]):
                v1 = regs[s0]
                raw = np.concatenate(
                    [np.ascontiguousarray(v1).view(np.uint8),
                     np.ascontiguousarray(regs[s1]).view(np.uint8)]
                )
                nbytes = np.ascontiguousarray(v1).view(np.uint8).size
                shift = int(regs[s2])
                regs[d] = raw[shift : shift + nbytes].view(v1.dtype).copy()
            return step

        if op in _VECTOR_BIN:
            dt = imm["elem"].numpy_dtype
            canon = _canon(op)
            # add/sub/mul on same-dtype operands already yield dt, so the
            # normalizing asarray is skipped on that (overwhelmingly
            # common) path; mixed dtypes fall back to the exact reference
            # normalization.
            if canon in ("add", "sub", "mul"):
                opfn = {"add": operator.add, "sub": operator.sub,
                        "mul": operator.mul}[canon]

                def step(regs, d=d, s0=ss[0], s1=ss[1], opfn=opfn, dt=dt):
                    r = opfn(regs[s0], regs[s1])
                    regs[d] = r if r.dtype == dt else np.asarray(r, dtype=dt)
                return step
            fn = _BIN_FUNCS[canon]

            def step(regs, d=d, s0=ss[0], s1=ss[1], fn=fn, dt=dt):
                regs[d] = np.asarray(fn(regs[s0], regs[s1], dt), dtype=dt)
            return step

        if op in _VECTOR_UN:
            dt = imm["elem"].numpy_dtype
            fn = _UN_FUNCS[_canon(op)]

            def step(regs, d=d, s=ss[0], fn=fn, dt=dt):
                regs[d] = np.asarray(fn(regs[s], dt), dtype=dt)
            return step

        if op == "vcmp":
            fn = _CMP[imm["op"]]

            def step(regs, d=d, s0=ss[0], s1=ss[1], fn=fn):
                regs[d] = fn(regs[s0], regs[s1]).astype(np.int8)
            return step

        if op == "vselect":

            def step(regs, d=d, c=ss[0], s1=ss[1], s2=ss[2]):
                regs[d] = np.where(
                    regs[c].astype(bool), regs[s1], regs[s2]
                )
            return step

        if op == "vcvt":
            to = imm["to"]
            dt = to.numpy_dtype
            if to.is_float:

                def step(regs, d=d, s=ss[0], dt=dt):
                    regs[d] = regs[s].astype(dt)
            else:

                def step(regs, d=d, s=ss[0], dt=dt):
                    regs[d] = np.trunc(regs[s]).astype(dt)
            return step

        if op == "vinsert0":

            def step(regs, d=d, s0=ss[0], s1=ss[1]):
                v = regs[s0].copy()
                v[0] = v.dtype.type(regs[s1])
                regs[d] = v
            return step

        if op == "vreduce":
            kind = imm["kind"]
            if kind == "plus":

                def step(regs, d=d, s=ss[0]):
                    v = regs[s]
                    regs[d] = v.dtype.type(np.add.reduce(v))
            elif kind == "min":

                def step(regs, d=d, s=ss[0]):
                    regs[d] = regs[s].min()
            else:

                def step(regs, d=d, s=ss[0]):
                    regs[d] = regs[s].max()
            return step

        if op == "vdot":
            dt = imm["elem"].numpy_dtype  # the *widened* accumulator element

            def step(regs, d=d, s0=ss[0], s1=ss[1], s2=ss[2], dt=dt):
                wide = regs[s0].astype(dt) * regs[s1].astype(dt)
                pair = wide.reshape(-1, 2).sum(axis=1, dtype=dt)
                regs[d] = (regs[s2] + pair).astype(dt)
            return step

        if op == "vwidenmul":
            dt = imm["elem"].numpy_dtype  # widened element type
            lo = imm["half"] == "lo"

            def step(regs, d=d, s0=ss[0], s1=ss[1], dt=dt, lo=lo):
                a = regs[s0]
                m = a.size
                sl = slice(0, m // 2) if lo else slice(m // 2, m)
                regs[d] = a[sl].astype(dt) * regs[s1][sl].astype(dt)
            return step

        if op == "vpack":
            dt = imm["elem"].numpy_dtype  # narrowed element type

            def step(regs, d=d, s0=ss[0], s1=ss[1], dt=dt):
                regs[d] = np.concatenate(
                    [regs[s0], regs[s1]]
                ).astype(dt)
            return step

        if op == "vunpack":
            dt = imm["elem"].numpy_dtype  # widened element type
            lo = imm["half"] == "lo"

            def step(regs, d=d, s=ss[0], dt=dt, lo=lo):
                a = regs[s]
                m = a.size
                sl = slice(0, m // 2) if lo else slice(m // 2, m)
                regs[d] = a[sl].astype(dt)
            return step

        if op == "vextract":
            stride = imm["stride"]
            offset = imm["offset"]
            srcs = tuple(ss)

            def step(regs, d=d, srcs=srcs, stride=stride, offset=offset):
                parts = np.concatenate([regs[s] for s in srcs])
                regs[d] = parts[offset::stride].copy()
            return step

        if op == "vinterleave":
            lo = imm["half"] == "lo"

            def step(regs, d=d, s0=ss[0], s1=ss[1], lo=lo):
                a = regs[s0]
                b = regs[s1]
                m = a.size
                sl = slice(0, m // 2) if lo else slice(m // 2, m)
                out = np.empty(m, dtype=a.dtype)
                out[0::2] = a[sl]
                out[1::2] = b[sl]
                regs[d] = out
            return step

        if op == "call_lib":
            # Library fallback: compile the emulated idiom's closure; the
            # block accounting already charged call_lib's cost and counted
            # the op as "call_lib", exactly like the reference VM.
            inner = MInstr(imm["sem"], ins.dst, ins.srcs, imm)
            return self._compile_instr(inner)

        raise VMError(f"unknown opcode {op!r}")

    # -- execution ----------------------------------------------------------

    def run(
        self,
        scalar_args: dict[str, object] | None = None,
        arrays: dict[str, ArrayBuffer] | None = None,
        max_instructions: int = 500_000_000,
    ) -> RunResult:
        """Execute the translated code; mirrors :meth:`VM.run` exactly."""
        scalar_args = scalar_args or {}
        arrays = arrays or {}
        mfunc = self.mfunc
        for slot in mfunc.arrays:
            if slot.name not in arrays:
                raise VMError(f"array parameter {slot.name!r} not bound")
        for name, cell in self._cells.items():
            cell[0] = arrays.get(name)
        regs: list = [None] * len(self._slot_of)
        for slot_i, conv, name in self._param_binds:
            if name not in scalar_args:
                raise VMError(f"scalar parameter {name!r} not bound")
            regs[slot_i] = conv(scalar_args[name])
        self._spills.clear()
        retbox = self._retbox
        retbox[0] = None

        blocks = self._blocks
        # (count, cycles, steps, next) tuples: tuple unpacking in the hot
        # loop is markedly cheaper than four dataclass attribute lookups
        # per block.
        dispatch = self._dispatch
        cycles = 0.0
        executed = 0
        counts: Counter[str] | None = Counter() if self.count_ops else None
        bi = 0 if blocks else -1
        # One errstate for the whole run: the reference VM suppresses the
        # same warning classes around every op, so values are unchanged.
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if counts is None:
                while bi >= 0:
                    count, cyc, steps, nextf = dispatch[bi]
                    executed += count
                    if executed > max_instructions:
                        self._replay_overrun(
                            blocks[bi], regs, executed - count,
                            max_instructions,
                        )
                    cycles += cyc
                    for f in steps:
                        f(regs)
                    bi = nextf(regs)
            else:
                while bi >= 0:
                    count, cyc, steps, nextf = dispatch[bi]
                    executed += count
                    if executed > max_instructions:
                        self._replay_overrun(
                            blocks[bi], regs, executed - count,
                            max_instructions,
                        )
                    cycles += cyc
                    counts.update(blocks[bi].op_counts)
                    for f in steps:
                        f(regs)
                    bi = nextf(regs)
        return RunResult(
            retbox[0], cycles, executed, counts if counts is not None else {}
        )

    def _replay_overrun(self, block: _Block, regs: list, executed: int,
                        max_instructions: int) -> None:
        """Re-execute ``block`` per instruction with per-instruction budget
        checks, so the trap raised (budget exhaustion vs. an alignment
        fault on an earlier instruction of the block) is exactly the one
        the reference VM raises.  Always raises."""
        for action in block.replay:
            executed += 1
            if executed > max_instructions:
                raise VMError(
                    f"instruction budget exceeded in {self.mfunc.name} "
                    f"({max_instructions})"
                )
            if action is not None:
                action(regs)
        raise AssertionError("unreachable: overrun block must trap")


def translate(mfunc: MFunction, target: Target,
              count_ops: bool = False) -> ThreadedCode:
    """Translate ``mfunc`` into threaded code for ``target``."""
    return ThreadedCode(mfunc, target, count_ops)


class ThreadedVM:
    """Drop-in replacement for :class:`~repro.machine.vm.VM` backed by the
    threaded-code engine, with a per-instance translation cache keyed by
    ``(id(mfunc), target, count_ops)``."""

    def __init__(self, target: Target, max_instructions: int = 500_000_000):
        self.target = target
        self.max_instructions = max_instructions
        self._cache: dict[tuple, ThreadedCode] = {}

    def translation(self, mfunc: MFunction,
                    count_ops: bool = False) -> ThreadedCode:
        key = (id(mfunc), self.target.name, count_ops)
        hit = self._cache.get(key)
        if hit is not None and hit.mfunc is mfunc:
            return hit
        code = ThreadedCode(mfunc, self.target, count_ops)
        self._cache[key] = code
        return code

    def run(
        self,
        mfunc: MFunction,
        scalar_args: dict[str, object] | None = None,
        arrays: dict[str, ArrayBuffer] | None = None,
        count_ops: bool = False,
    ) -> RunResult:
        return self.translation(mfunc, count_ops).run(
            scalar_args, arrays, self.max_instructions
        )
