"""If-conversion (§II.c mentions it among SLP's prerequisite transforms).

Control flow inside a candidate loop body is converted to data flow:
an ``If`` whose arms only compute values (no stores, no nested loops)
becomes ``Select`` instructions — both arms execute, the condition picks
lanes.  Loops whose Ifs cannot be converted are not vectorizable.
"""

from __future__ import annotations

from ..ir import Block, ForLoop, If, Instr, Select, Yield

__all__ = ["if_convert_block", "can_if_convert"]


def _arm_convertible(block: Block) -> bool:
    for instr in block.instrs:
        if isinstance(instr, (ForLoop, If)):
            return False
        if isinstance(instr, Yield):
            continue
        if instr.has_side_effects:
            return False
    return True


def can_if_convert(block: Block) -> bool:
    """True if every If in ``block`` (recursively) is convertible."""
    for instr in block.instrs:
        if isinstance(instr, If):
            if not (
                _arm_convertible(instr.then_block)
                and _arm_convertible(instr.else_block)
            ):
                return False
            if not (can_if_convert(instr.then_block) and can_if_convert(instr.else_block)):
                return False
        elif isinstance(instr, ForLoop):
            # Nested loops are the outer-vectorizer's business, not ours.
            continue
    return True


def if_convert_block(block: Block) -> bool:
    """Convert all Ifs in ``block`` to selects, in place.

    Returns False (leaving the block partially untouched only by way of
    already-safe rewrites) if some If is not convertible — callers should
    check :func:`can_if_convert` first; this is a belt-and-braces guard.
    """
    new_instrs: list[Instr] = []
    ok = True
    for instr in block.instrs:
        if not isinstance(instr, If):
            new_instrs.append(instr)
            continue
        if not (
            _arm_convertible(instr.then_block) and _arm_convertible(instr.else_block)
        ):
            ok = False
            new_instrs.append(instr)
            continue
        subst = {}
        then_vals = []
        else_vals = []
        for arm, sink in (
            (instr.then_block, then_vals),
            (instr.else_block, else_vals),
        ):
            term = arm.terminator
            for inner in arm.instrs:
                if inner is term and isinstance(term, Yield):
                    sink.extend(term.values)
                    continue
                new_instrs.append(inner)
        for r, tv, ev in zip(instr.results, then_vals, else_vals):
            sel = Select(instr.cond, tv, ev, name="ifcvt")
            new_instrs.append(sel)
            subst[r] = sel
        # Remap later uses of the If's results.
        if subst:
            _remap_rest(block, instr, subst)
            for later in new_instrs:
                later.replace_uses(subst)
    block.instrs = new_instrs
    return ok


def _remap_rest(block: Block, after: Instr, subst: dict) -> None:
    from ..ir import walk

    seen = False
    for instr in block.instrs:
        if instr is after:
            seen = True
            continue
        if not seen:
            continue
        instr.replace_uses(subst)
        if isinstance(instr, ForLoop):
            for inner in walk(instr.body):
                inner.replace_uses(subst)
        elif isinstance(instr, If):
            for inner in walk(instr.then_block):
                inner.replace_uses(subst)
            for inner in walk(instr.else_block):
                inner.replace_uses(subst)
