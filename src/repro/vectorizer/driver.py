"""The offline auto-vectorizer driver.

Walks every loop nest of a function and applies, in order of preference:

1. inner-loop vectorization (the bread-and-butter path);
2. outer-loop vectorization for nests whose innermost loop resists
   (strided or recurrent inner bodies — alvinn, dct);
3. superword (SLP) re-rolling for unrolled straight-line bodies
   (mix_streams).

Produces a *new* function (the original scalar IR is untouched — the
harness needs both, they are the two bytecodes of Figure 1).  Every
decision is recorded in ``fn.annotations["vect_report"]`` so tests and the
experiment harness can assert which kernels vectorized and why others did
not (the paper's lu/ludcmp/seidel cases).
"""

from __future__ import annotations

from ..analysis.loopinfo import LoopInfo
from ..ir import (
    Block,
    ForLoop,
    Function,
    If,
    Module,
    Value,
    clone_block,
    clone_instr,
    walk,
)
from .config import VectorizerConfig
from .ifconv import can_if_convert, if_convert_block
from .legality import check_inner_loop
from .loop import build_vectorized_region
from .outer import try_outer_vectorize
from .slp import try_slp_vectorize
from .stmt import PlanError

__all__ = ["vectorize_function", "vectorize_module"]


def _clone_function(fn: Function, form: str) -> Function:
    out = Function(fn.name, fn.scalar_params, fn.array_params, fn.return_type)
    out.body = clone_block(fn.body, {})
    out.form = form
    out.annotations = dict(fn.annotations)
    return out


def _remap_after(block: Block, start: int, mapping: dict[Value, Value]) -> None:
    for instr in block.instrs[start:]:
        instr.replace_uses(mapping)
        if isinstance(instr, ForLoop):
            for inner in walk(instr.body):
                inner.replace_uses(mapping)
        elif isinstance(instr, If):
            for inner in walk(instr.then_block):
                inner.replace_uses(mapping)
            for inner in walk(instr.else_block):
                inner.replace_uses(mapping)


class _Driver:
    def __init__(self, fn: Function, config: VectorizerConfig) -> None:
        self.fn = fn
        self.config = config
        self.report: dict[str, str] = {}
        self._loop_keys: dict[int, str] = {}

    def run(self) -> Function:
        self._process_block(self.fn.body)
        self.fn.annotations["vect_report"] = self.report
        return self.fn

    def _process_block(self, block: Block) -> None:
        i = 0
        while i < len(block.instrs):
            instr = block.instrs[i]
            if isinstance(instr, ForLoop):
                # Never touch loops the vectorizer itself produced
                # (peel/vector/epilogue trios, versioned scalar clones).
                if instr.kind != "scalar" or "vect_group" in instr.annotations:
                    i += 1
                    continue
                if self._try_loop(block, i, instr):
                    # Skip everything just spliced in.
                    i += 1
                    continue
                self._process_block(instr.body)
            elif isinstance(instr, If):
                self._process_block(instr.then_block)
                self._process_block(instr.else_block)
            i += 1

    # -- one loop ------------------------------------------------------------

    def _try_loop(self, block: Block, index: int, loop: ForLoop) -> bool:
        has_nested = any(isinstance(x, ForLoop) for x in walk(loop.body))
        if has_nested:
            if not self.config.enable_outer:
                return False
            # Only try the outer loop when its immediate inner loops do not
            # vectorize on their own (the common profitable case for
            # alvinn/dct-style nests); the version guard still lets the JIT
            # fall back.
            if self._any_inner_vectorizable(loop):
                return False
            return self._apply(
                block, index, loop,
                lambda: try_outer_vectorize(loop, self.config),
                label="outer",
            )
        # Innermost loop: if-convert a clone if needed.
        work = loop
        if any(isinstance(x, If) for x in walk(loop.body)):
            if not can_if_convert(loop.body):
                self.report[self._key(loop)] = "rejected: control flow"
                return False
            vmap: dict[Value, Value] = {}
            work = clone_instr(loop, vmap)
            if_convert_block(work.body)
        info = LoopInfo(work, None, 0, children=[])
        legal = check_inner_loop(info, self.config)
        if not legal.ok:
            self.report[self._key(loop)] = "rejected: " + "; ".join(legal.reasons)
            if self.config.enable_slp:
                return self._apply(
                    block, index, loop,
                    lambda: try_slp_vectorize(loop, self.config),
                    label="slp",
                )
            return False
        estimate = self._estimate(info, legal)
        if estimate is not None and estimate.speedup < self.config.cost_threshold:
            self.report[self._key(loop)] = (
                f"rejected (cost model): est x{estimate.speedup:.2f} "
                f"on {estimate.profile}"
            )
            return False
        done = self._apply(
            block, index, loop,
            lambda: _region_or_none(info, legal, self.config),
            label="inner",
            replaced=work,
            original=loop,
        )
        if done and estimate is not None:
            self.report[self._key(loop)] += f" est x{estimate.speedup:.2f}"
        return done

    def _estimate(self, info: LoopInfo, legal):
        from .cost import estimate_loop_cost
        from .legality import Legality
        from .stmt import plan_streams

        try:
            lc = None
            from ..ir import Const

            if isinstance(info.loop.lower, Const):
                lc = int(info.loop.lower.value)
            plan = plan_streams(
                legal, info.iv, legal.min_elem, self.config, lc
            )
        except PlanError:
            return None
        return estimate_loop_cost(info, legal, plan, self.config)

    def _any_inner_vectorizable(self, loop: ForLoop) -> bool:
        for instr in loop.body.instrs:
            if isinstance(instr, ForLoop):
                nested = any(isinstance(x, ForLoop) for x in walk(instr.body))
                if nested:
                    if self._any_inner_vectorizable(instr):
                        return True
                    continue
                work = instr
                if any(isinstance(x, If) for x in walk(instr.body)):
                    if not can_if_convert(instr.body):
                        continue
                    work = clone_instr(instr, {})
                    if_convert_block(work.body)
                info = LoopInfo(work, None, 0, children=[])
                legal = check_inner_loop(info, self.config)
                if legal.ok:
                    try:
                        plan_probe = build_vectorized_region(
                            info, legal, _probe_config(self.config)
                        )
                        del plan_probe
                        return True
                    except PlanError:
                        continue
            elif isinstance(instr, If):
                for arm in (instr.then_block, instr.else_block):
                    for inner in arm.instrs:
                        if isinstance(inner, ForLoop):
                            return True  # be conservative: let inner pass run
        return False

    def _apply(self, block, index, loop, builder, label, replaced=None,
               original=None) -> bool:
        try:
            region = builder()
        except PlanError as exc:
            self.report[self._key(loop)] = f"rejected ({label}): {exc}"
            return False
        if region is None:
            return False
        mapping = dict(region.result_map)
        if replaced is not None and original is not None:
            # The vectorized region was built from the if-converted clone;
            # its result_map keys are the clone's results.
            for old_r, new_r in zip(original.results, replaced.results):
                if new_r in mapping:
                    mapping[old_r] = mapping[new_r]
        block.instrs[index : index + 1] = region.instrs
        _remap_after(block, index + len(region.instrs), mapping)
        self.report[self._key(loop)] = f"vectorized ({label})"
        return True

    def _key(self, loop: ForLoop) -> str:
        # Keyed by per-function discovery order, not ``loop.id``: the
        # global instruction counter depends on everything compiled
        # before in this process, and the report is encoded into the
        # canonical bytecode — replicas must produce identical bytes.
        key = self._loop_keys.get(id(loop))
        if key is None:
            key = f"loop_{loop.iv.name}_{len(self._loop_keys)}"
            self._loop_keys[id(loop)] = key
        return key


def _region_or_none(info, legal, config):
    return build_vectorized_region(info, legal, config)


def _probe_config(config: VectorizerConfig) -> VectorizerConfig:
    """A throwaway config for feasibility probes (keeps group ids stable)."""
    from dataclasses import replace

    return replace(config, _group_counter=[10_000_000])


def vectorize_function(fn: Function, config: VectorizerConfig) -> Function:
    """Vectorize ``fn`` into a new function (form="vector").

    The returned function is the *vectorized bytecode* of the split flow
    (or the target-specific vector IR of the native flow); the input is
    left untouched and serves as the scalar bytecode.
    """
    out = _clone_function(fn, "vector")
    return _Driver(out, config).run()


def vectorize_module(module: Module, config: VectorizerConfig) -> Module:
    """Vectorize every function of a module into a new module."""
    out = Module(module.name + ".vec")
    for fn in module:
        out.add(vectorize_function(fn, config))
    return out
