"""Vectorizer configuration: one engine, two personalities.

The paper's key move is reusing a single auto-vectorization engine for both
flows (§III-B adjusts GCC's "multi-platform auto-vectorizer to generate the
vectorized bytecode").  This config selects between:

* **split** (``target is None``): vector sizes are symbolic — loop steps and
  pointer increments go through ``get_VF``/``get_align_limit``, loop bounds
  through ``loop_bound``, and alignment/alias decisions through
  ``version_guard`` — producing portable vectorized bytecode.
* **native** (``target`` set): the classical monolithic compiler — VF is a
  constant, array bases are assumed aligned (GCC forces alignment of the
  globals the benchmarks use), no versioning or loop_bound indirection.

The boolean knobs exist for the paper's own ablation (§V-A.b, alignment
optimizations and hints disabled) and for the extra ablations in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Const, GetVF, IRBuilder, Value
from ..ir.types import I32, ScalarType
from ..targets.base import Target

__all__ = ["VectorizerConfig", "split_config", "native_config"]


@dataclass
class VectorizerConfig:
    """Offline-stage policy.

    Attributes:
        target: None for the split flow; a Target for native compilation.
        enable_alignment_opts: emit misalignment hints, aligned-version
            guards, peeling, and optimized realignment.  Disabling this is
            the paper's §V-A.b ablation (2.5x average degradation).
        enable_versioning: emit version_guard-selected loop versions; off
            means only the hint-less fallback version is produced.
        enable_realign_reuse: cross-iteration reuse of realignment loads
            (Figure 2d's ``va = vb``); off re-loads both vectors each
            iteration.
        enable_slp: straight-line (superword) vectorization.
        enable_outer: outer-loop vectorization for nests.
        dependence_hints: instead of conservatively refusing loops with
            loop-carried dependences, version them on ``VF <= distance``
            (§III-B.b's alternative approach).
        assume_noalias: treat may_alias arrays as independent (native flow
            compiled with whole-program knowledge).
    """

    target: Target | None = None
    enable_alignment_opts: bool = True
    enable_versioning: bool = True
    enable_realign_reuse: bool = True
    enable_slp: bool = True
    enable_outer: bool = True
    dependence_hints: bool = False
    assume_noalias: bool = False
    #: Minimum estimated speedup (cost model, §II.c) for vectorizing a
    #: loop; below it the loop stays scalar.  0.0 disables the veto.
    cost_threshold: float = 0.98
    _group_counter: list = field(default_factory=lambda: [0])

    @property
    def is_split(self) -> bool:
        return self.target is None

    def next_group(self) -> int:
        self._group_counter[0] += 1
        return self._group_counter[0]

    def vf_value(self, b: IRBuilder, elem: ScalarType, group: int) -> Value:
        """The VF for ``elem``: a get_VF idiom (split) or a constant."""
        if self.target is None:
            instr = GetVF(elem, name=f"vf_{elem.name}")
            instr.group = group
            return b.emit(instr)
        return Const(self.target.vf(elem), I32)

    def supports_vector_elem(self, elem: ScalarType) -> bool:
        """Native flow: skip vectorization of types the target can't do.
        Split flow: everything is a candidate (the JIT decides)."""
        if self.target is None:
            return True
        return self.target.supports_elem(elem)


def split_config(**overrides) -> VectorizerConfig:
    """The offline stage of the split flow (Figure 1(A))."""
    return VectorizerConfig(target=None, **overrides)


def native_config(target: Target, **overrides) -> VectorizerConfig:
    """The monolithic native compiler (Figure 4's E/F flow)."""
    overrides.setdefault("assume_noalias", True)
    return VectorizerConfig(target=target, **overrides)
