"""Vectorization legality analysis for one candidate loop.

Combines the dependence, reduction, and access-shape checks of §II into a
single verdict, recording everything the code generator needs (reductions,
memory streams, alias-guard requirements, the smallest element type that
fixes VF).  The dependence policy is the paper's conservative one by
default — "refrain from (offline) vectorizing a loop with loop-carried
dependences" (§III-B.b) — with the distance-hint alternative behind
``config.dependence_hints``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import (
    MemRef,
    Reduction,
    collect_memrefs,
    dependences_for_loop,
    find_reductions,
)
from ..analysis.loopinfo import LoopInfo, const_trip_count
from ..ir import (
    BinOp,
    Cmp,
    Const,
    Convert,
    ForLoop,
    If,
    Load,
    Select,
    Store,
    UnOp,
    Yield,
    walk,
)
from ..ir.types import BOOL, ScalarType
from .config import VectorizerConfig
from .ifconv import can_if_convert

__all__ = ["Legality", "check_inner_loop", "MAX_LOAD_STRIDE", "MAX_STORE_STRIDE"]

MAX_LOAD_STRIDE = 4
MAX_STORE_STRIDE = 2
MAX_WIDEN_RATIO = 8

_SUPPORTED = (BinOp, UnOp, Cmp, Select, Convert, Load, Store, Yield, If)


@dataclass
class Legality:
    """Verdict plus everything codegen needs."""

    ok: bool
    reasons: list[str] = field(default_factory=list)
    reductions: dict[int, Reduction] = field(default_factory=dict)
    refs: list[MemRef] = field(default_factory=list)
    alias_pairs: list[tuple] = field(default_factory=list)
    min_elem: ScalarType | None = None
    needs_if_conversion: bool = False
    dep_distance_bound: int | None = None

    def reject(self, reason: str) -> "Legality":
        self.ok = False
        self.reasons.append(reason)
        return self


def check_inner_loop(info: LoopInfo, config: VectorizerConfig) -> Legality:
    """Decide whether ``info.loop`` (an innermost loop) can be vectorized."""
    loop = info.loop
    result = Legality(ok=True)
    if not info.is_innermost:
        return result.reject("not innermost")
    if not isinstance(loop.step, Const) or int(loop.step.value) != 1:
        return result.reject("non-unit step")

    # Shape of the body: only straight-line (or if-convertible) code.
    has_if = False
    for instr in walk(loop.body):
        if isinstance(instr, ForLoop):
            return result.reject("nested loop in body")
        if isinstance(instr, If):
            has_if = True
            continue
        if not isinstance(instr, _SUPPORTED):
            return result.reject(f"unsupported op {instr.mnemonic}")
    if has_if:
        if not can_if_convert(loop.body):
            return result.reject("control flow not if-convertible")
        result.needs_if_conversion = True

    # Loop-carried scalars must all be reductions (Table 1 supports
    # plus/min/max); anything else is a true recurrence.
    result.reductions = find_reductions(loop)
    for index in range(len(loop.carried)):
        if index not in result.reductions:
            return result.reject(
                f"non-reduction loop-carried value #{index}"
            )

    # Memory references: affine, bounded strides, no indirect addressing
    # (subscript terms must be defined outside the loop body).
    body_ids = {a.id for a in loop.body.args}
    for instr in walk(loop.body):
        body_ids.add(instr.id)
    result.refs = collect_memrefs(loop)
    elem_sizes: list[ScalarType] = []
    for ref in result.refs:
        elem_sizes.append(ref.array.elem)
        if ref.affine is None:
            return result.reject(f"non-affine access to {ref.array.name}")
        for term in ref.affine.terms:
            if term is not info.iv and term.id in body_ids:
                return result.reject(
                    f"loop-variant subscript term in access to {ref.array.name}"
                )
        stride = ref.affine.coeff(info.iv)
        if ref.is_store:
            if stride < 1 or stride > MAX_STORE_STRIDE:
                return result.reject(
                    f"store stride {stride} to {ref.array.name}"
                )
        else:
            if stride < 0 or stride > MAX_LOAD_STRIDE:
                return result.reject(
                    f"load stride {stride} from {ref.array.name}"
                )
    for red in result.reductions.values():
        elem_sizes.append(red.carried.type)

    if not any(r.is_store for r in result.refs) and not result.reductions:
        return result.reject("no stores and no reductions (nothing to do)")
    if not elem_sizes:
        return result.reject("no vectorizable data")
    sizes = {t.size for t in elem_sizes if t != BOOL}
    if not sizes:
        return result.reject("only boolean data")
    if max(sizes) // min(sizes) > MAX_WIDEN_RATIO:
        return result.reject("type-size ratio too large")
    result.min_elem = min(
        (t for t in elem_sizes if t != BOOL), key=lambda t: (t.size, t.name)
    )

    # Native flow: the target must support every element type used.
    for t in elem_sizes:
        if t == BOOL:
            continue
        if not config.supports_vector_elem(t):
            return result.reject(f"target lacks vector {t}")

    # Dependences.
    trip = const_trip_count(loop)
    trips = {info.iv: trip} if trip is not None else None
    deps = dependences_for_loop(result.refs, info.iv, set(), trips)
    min_distance: int | None = None
    for dep in deps:
        r = dep.result
        if r.kind == "loop_independent":
            continue
        if r.kind == "unknown":
            if (
                dep.src.array is not dep.dst.array
                and dep.src.array.may_alias
                and dep.dst.array.may_alias
            ):
                if config.assume_noalias:
                    continue
                pair = (dep.src.array, dep.dst.array)
                if pair not in result.alias_pairs and (
                    pair[1],
                    pair[0],
                ) not in result.alias_pairs:
                    result.alias_pairs.append(pair)
                continue
            return result.reject(
                f"unanalyzable dependence on {dep.src.array.name}"
            )
        if r.kind == "carried":
            if config.dependence_hints and r.distance is not None:
                d = r.distance
                min_distance = d if min_distance is None else min(min_distance, d)
                continue
            return result.reject(
                f"loop-carried dependence (distance {r.distance}) on "
                f"{dep.src.array.name}"
            )
    result.dep_distance_bound = min_distance
    return result
