"""The vectorization cost model (§II.c).

"Because of these overheads, vectorization may not always be profitable.
A cost model is needed to determine when to vectorize."

The model estimates per-element cycle costs for the scalar loop and the
vectorized loop on a *profile*: a concrete target for the native flow, or
the generic least-common-denominator SIMD profile for the split flow (the
offline compiler cannot know the real machine; the paper encodes residual
decisions as version guards instead).  The driver records the estimate in
the vectorization report and can veto unprofitable loops.

The accounting mirrors the overhead taxonomy of §II:

* realignment: one extra aligned load + permute per misaligned unit stream
  (amortized by the cross-iteration reuse chain), or a misaligned-access
  penalty;
* strided access: the extract/interleave shuffles;
* widening: the unpack/pack ladder between element widths;
* loop peeling/epilogue: scalar iterations amortized over the trip count
  (unknown trip counts use a pessimistic default);
* versioning: the guard evaluation, amortized.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loopinfo import LoopInfo, const_trip_count
from ..ir import BinOp, Cmp, Convert, Load, Select, Store, UnOp, Yield, walk
from ..ir.types import BOOL, ScalarType
from .config import VectorizerConfig
from .legality import Legality
from .stmt import StreamPlan, StridedLoadGroup, StridedStoreGroup, UnitLoadStream

__all__ = ["CostEstimate", "GENERIC_SIMD", "estimate_loop_cost", "SimdProfile"]

#: Assumed trip count when the loop bound is symbolic (the paper's kernels
#: run hundreds of iterations; overheads amortize).
DEFAULT_TRIP = 128


@dataclass(frozen=True)
class SimdProfile:
    """The cost-model's view of a SIMD platform."""

    name: str
    vector_size: int
    misaligned_load_penalty: float = 1.0   # extra cycles vs aligned
    misaligned_store_penalty: float = 2.0
    shuffle_cost: float = 1.0              # permute/extract/interleave
    reduce_cost: float = 3.0
    scalar_op: float = 1.0
    vector_op: float = 1.0
    mul_extra: float = 1.0                 # multiply over add, either side
    mem_op: float = 1.0


#: "targeting the greatest common denominator of SIMD platforms" (§III-A):
#: 16-byte vectors, misaligned accesses assumed costly, shuffles cheap.
GENERIC_SIMD = SimdProfile("generic", vector_size=16)


def profile_for(config: VectorizerConfig) -> SimdProfile:
    if config.target is None:
        return GENERIC_SIMD
    t = config.target
    return SimdProfile(
        name=t.name,
        vector_size=max(t.vector_size, 1),
        misaligned_load_penalty=t.cost.get("vload_u") - t.cost.get("vload_a"),
        misaligned_store_penalty=t.cost.get("vstore_u") - t.cost.get("vstore_a"),
        shuffle_cost=t.cost.get("vextract"),
        reduce_cost=t.cost.get("vreduce"),
    )


@dataclass
class CostEstimate:
    """Scalar vs vector per-element cost and the verdict."""

    scalar_per_elem: float
    vector_per_elem: float
    trip: int
    profile: str

    @property
    def speedup(self) -> float:
        if self.vector_per_elem <= 0:
            return 1.0
        return self.scalar_per_elem / self.vector_per_elem

    @property
    def profitable(self) -> bool:
        return self.vector_per_elem < self.scalar_per_elem

    def __repr__(self) -> str:
        return (
            f"CostEstimate(scalar={self.scalar_per_elem:.2f}, "
            f"vector={self.vector_per_elem:.2f}, est x{self.speedup:.2f})"
        )


def _scalar_body_cost(loop, p: SimdProfile) -> float:
    cost = 0.0
    for instr in walk(loop.body):
        if isinstance(instr, (Load, Store)):
            cost += p.mem_op
        elif isinstance(instr, BinOp):
            cost += p.scalar_op + (p.mul_extra if instr.op in ("mul", "div") else 0)
        elif isinstance(instr, (UnOp, Cmp, Select, Convert)):
            cost += p.scalar_op
        elif isinstance(instr, Yield):
            continue
    # Loop control: compare + branch + induction increment.
    return cost + 3 * p.scalar_op


def estimate_loop_cost(
    info: LoopInfo,
    legal: Legality,
    plan: StreamPlan,
    config: VectorizerConfig,
) -> CostEstimate:
    """Estimate scalar vs vectorized per-element cost for an inner loop."""
    p = profile_for(config)
    loop = info.loop
    min_elem = legal.min_elem
    vf = max(1, p.vector_size // min_elem.size)
    trip = const_trip_count(loop) or DEFAULT_TRIP

    scalar_per_elem = _scalar_body_cost(loop, p)

    # Vector body: arithmetic per pack.
    vec_body = 0.0
    for instr in walk(loop.body):
        if isinstance(instr, (Load, Store)):
            continue  # accounted via streams below
        t = instr.type
        k = 1
        if isinstance(t, ScalarType) and t != BOOL:
            k = max(1, t.size // min_elem.size)
        if isinstance(instr, BinOp):
            vec_body += k * (
                p.vector_op + (p.mul_extra if instr.op in ("mul", "div") else 0)
            )
        elif isinstance(instr, (UnOp, Cmp, Select)):
            vec_body += k * p.vector_op
        elif isinstance(instr, Convert):
            # The widen/narrow ladder: one shuffle per produced pack.
            src_k = max(1, instr.value.type.size // min_elem.size)
            vec_body += max(k, src_k) * p.shuffle_cost

    # Memory streams.
    for stream in plan.unit_loads.values():
        loads = stream.k
        if stream.hint.known and stream.hint.mis % p.vector_size == 0:
            vec_body += loads * p.mem_op
        elif stream.use_chain:
            # Optimized realignment: one aligned load + one permute per
            # pack per iteration (Figure 2d).
            vec_body += loads * (p.mem_op + p.shuffle_cost)
        else:
            vec_body += loads * (p.mem_op + p.misaligned_load_penalty)
    for group in plan.strided_loads:
        vec_body += group.stride * (p.mem_op + p.misaligned_load_penalty)
        vec_body += len(set(group.offsets.values())) * p.shuffle_cost
    for splan in plan.unit_stores.values():
        if splan.is_peel_target or (
            splan.hint.known and splan.hint.mis % p.vector_size == 0
        ):
            vec_body += splan.k * p.mem_op
        else:
            vec_body += splan.k * (p.mem_op + p.misaligned_store_penalty)
    for group in plan.strided_stores:
        vec_body += 2 * p.shuffle_cost + 2 * (p.mem_op + p.misaligned_store_penalty)

    # Scalar-load splats for invariant streams.
    vec_body += len(plan.invariant_loads) * (p.mem_op + p.shuffle_cost)
    # Loop control.
    vec_body += 3 * p.scalar_op

    # Amortized overheads: peel + epilogue scalar iterations, reduction
    # finalization, guard evaluation.  Exact counts when the trip count and
    # misalignment are compile-time constants, pessimistic averages else.
    known_trip = const_trip_count(loop) is not None
    if plan.peel is not None:
        es = plan.peel.elem.size
        vf_store = max(1, p.vector_size // es)
        peel_iters = float((vf_store - plan.peel.hint.mis // es) % vf_store)
    else:
        peel_iters = 0.0
    if known_trip:
        epilogue_iters = float((trip - int(peel_iters)) % vf)
    else:
        epilogue_iters = (vf - 1) / 2
    overhead = (peel_iters + epilogue_iters) * scalar_per_elem
    overhead += len(legal.reductions) * p.reduce_cost
    overhead += len(legal.alias_pairs) * 4 * p.scalar_op
    if config.is_split and config.enable_versioning:
        overhead += 2 * p.scalar_op

    total_elems = max(trip, 1)
    vector_per_elem = vec_body / vf + overhead / total_elems
    return CostEstimate(
        scalar_per_elem=scalar_per_elem,
        vector_per_elem=vector_per_elem,
        trip=trip,
        profile=p.name,
    )
