"""The offline auto-vectorizer: loop, outer-loop, and SLP vectorization
emitting split-layer bytecode (symbolic VF) or native vector IR."""

from .config import VectorizerConfig, native_config, split_config
from .cost import GENERIC_SIMD, CostEstimate, SimdProfile, estimate_loop_cost
from .driver import vectorize_function, vectorize_module
from .ifconv import can_if_convert, if_convert_block
from .legality import Legality, check_inner_loop
from .stmt import PlanError

__all__ = [
    "VectorizerConfig",
    "split_config",
    "native_config",
    "CostEstimate",
    "SimdProfile",
    "GENERIC_SIMD",
    "estimate_loop_cost",
    "vectorize_function",
    "vectorize_module",
    "Legality",
    "check_inner_loop",
    "can_if_convert",
    "if_convert_block",
    "PlanError",
]
