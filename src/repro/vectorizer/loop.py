"""Inner-loop vectorization: the peel/main/epilogue trio with versioning.

For a legal innermost loop this builds (§III-B):

* a *prologue* computing — in terms of ``get_VF`` / ``get_align_limit``
  idiom values — the peel count that aligns the chosen store stream, and
  the main-loop bound, both routed through ``loop_bound`` so a scalarizing
  JIT executes exactly one loop (§III-B.c);
* a scalar *peel* loop (clone of the original body);
* the *main vector loop*, stepping by ``get_VF(T_min)``, with optimized
  realignment chains carried across iterations and reductions accumulated
  in vector packs;
* a scalar *epilogue* loop for the remainder;
* (split flow) *loop versioning*: a ``bases_aligned`` guard selecting the
  hinted trio vs a hint-less fall-back trio, optionally wrapped in
  ``no_alias`` / ``vf_le`` guards with a scalar fall-back arm (§III-B.b,d).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loopinfo import LoopInfo
from ..ir import (
    AlignLoad,
    BinOp,
    Block,
    Const,
    ForLoop,
    GetAlignLimit,
    GetRT,
    If,
    InitReduc,
    InitUniform,
    IRBuilder,
    Instr,
    LoopBound,
    Reduce,
    Store,
    Value,
    VersionGuard,
    Yield,
    clone_instr,
)
from ..ir.types import I32, VectorType, narrowed
from ..ir.instructions import Convert
from .config import VectorizerConfig
from .legality import Legality
from .stmt import PlanError, StreamPlan, VecCtx, plan_streams

__all__ = ["build_vectorized_region", "VectorizedRegion"]

_RED_OP = {"plus": "add", "min": "min", "max": "max"}


@dataclass
class VectorizedRegion:
    """The instructions replacing the original loop, plus the value
    remapping from the old loop's results to the new final values."""

    instrs: list[Instr]
    result_map: dict[Value, Value]


def _lower_const(loop: ForLoop) -> int | None:
    if isinstance(loop.lower, Const):
        return int(loop.lower.value)
    return None


def _dot_candidate(red, loop: ForLoop, min_elem):
    """The Mul addend if the reduction fits dot_product, else None.

    The narrow operand type must equal the loop's granularity type
    (min_elem): dot_product pairwise-accumulates two narrow elements per
    accumulator lane, which only corresponds to two *original iterations*
    when the loop steps at the narrow type's VF.
    """
    if red.kind != "plus" or len(red.update_chain) != 1:
        return None
    upd = red.update_chain[0]
    if not isinstance(upd, BinOp):
        return None
    addend = upd.rhs if upd.lhs is red.carried else upd.lhs
    if not isinstance(addend, BinOp) or addend.op != "mul":
        return None
    t = addend.type
    if t.is_float or t.size < 2:
        return None
    try:
        narrow_t = narrowed(t)
    except KeyError:
        return None
    if narrow_t.size != min_elem.size:
        return None
    for side in (addend.lhs, addend.rhs):
        if isinstance(side, Convert) and isinstance(side.value, Const):
            side = Const(side.value.value, side.to)
        ok = (isinstance(side, Convert) and side.value.type == narrow_t) or (
            isinstance(side, Const)
            and not side.type.is_float
            and narrow_t.min_value <= int(side.value) <= narrow_t.max_value
        )
        if not ok:
            return None
    return addend


def _clone_scalar_loop(loop: ForLoop, lower: Value, upper: Value, kind: str,
                       inits: list[Value]) -> ForLoop:
    """Clone the whole original loop with new bounds/inits and a new kind."""
    vmap: dict[Value, Value] = {}
    new = clone_instr(loop, vmap)
    assert isinstance(new, ForLoop)
    new._operands = [lower, upper, Const(1, I32), *inits]
    new.kind = kind
    return new


def _check_native_store_feasibility(plan, config, lc) -> None:
    """The monolithic compiler knows the target: on an aligned-only ISA
    (AltiVec) it must refuse to vectorize loops whose stores it cannot
    prove aligned — exactly the decision the split flow defers to the JIT
    via hints and version guards."""
    t = config.target
    if not t.has_simd or t.supports_misaligned_store:
        return
    vsz = t.vector_size
    if plan.peel is not None and lc is not None:
        es = plan.peel.elem.size
        vf_store = max(1, vsz // es)
        peel = (vf_store - ((plan.peel.hint.mis // es) % vf_store)) % vf_store
    else:
        peel = 0
    for sp in plan.unit_stores.values():
        if sp.is_peel_target:
            continue
        ok = (
            sp.hint.known
            and sp.hint.mod % vsz == 0
            and (sp.hint.mis + peel * sp.step_bytes) % vsz == 0
        )
        if not ok:
            raise PlanError(
                f"store to {sp.array.name} not provably aligned on {t.name}"
            )
    for group in plan.strided_stores:
        ok = (
            group.hint.known
            and group.hint.mod % vsz == 0
            and (group.hint.mis + peel * group.elem.size * 2) % vsz == 0
        )
        if not ok:
            raise PlanError(
                f"strided store to {group.array.name} not provably aligned "
                f"on {t.name}"
            )


def build_trio(
    info: LoopInfo,
    legal: Legality,
    config: VectorizerConfig,
    group: int,
    hints_on: bool,
) -> VectorizedRegion:
    """Build prologue + peel + main + epilogue for one loop version.

    ``hints_on`` distinguishes the hinted version from the hint-less
    fall-back version (§III-B.c's two-version scheme).  Raises
    :class:`~repro.vectorizer.stmt.PlanError` when planning fails.
    """
    loop = info.loop
    staging = Block()
    b = IRBuilder(staging)
    min_elem = legal.min_elem
    assert min_elem is not None
    lc = _lower_const(loop)

    plan_cfg = config
    if not hints_on and config.enable_alignment_opts:
        from dataclasses import replace

        plan_cfg = replace(config, enable_alignment_opts=False,
                           _group_counter=config._group_counter)
    plan = plan_streams(legal, info.iv, min_elem, plan_cfg, lc)
    if not config.is_split:
        _check_native_store_feasibility(plan, config, lc)

    vf_cache: dict[str, Value] = {}

    def vf(elem) -> Value:
        if elem.name not in vf_cache:
            vf_cache[elem.name] = config.vf_value(b, elem, group)
        return vf_cache[elem.name]

    vf_min = vf(min_elem)
    lower, upper = loop.lower, loop.upper

    def tag(instr):
        instr.group = group
        return instr

    def loop_bound(vect: Value, scalar: Value) -> Value:
        if config.is_split:
            return b.emit(tag(LoopBound(vect, scalar, name="lb")))
        return vect

    # -- prologue: peel count and bounds ------------------------------------
    if plan.peel is not None and hints_on and lc is not None:
        store_elem = plan.peel.elem
        if config.is_split:
            al = b.emit(tag(GetAlignLimit(store_elem, name="al")))
        else:
            al = Const(config.target.vf(store_elem), I32)
        # hint.mis already accounts for the loop's lower bound (the hint is
        # the misalignment of the *first* access), so the peel count is
        # simply the element distance to the next aligned boundary.
        mis_elems = Const(plan.peel.hint.mis // store_elem.size, I32)
        t2 = b.mod(mis_elems, al)
        t3 = b.sub(al, t2)
        raw_peel = b.mod(t3, al)
        span = b.sub(upper, lower)
        span = b.max(span, Const(0, I32))
        peel_val = b.min(raw_peel, span)
    else:
        peel_val = Const(0, I32)
    peel_end = b.add(lower, peel_val, name="peel_end")
    peel_bound = loop_bound(peel_end, upper)
    rem = b.sub(upper, peel_end)
    rem = b.max(rem, Const(0, I32))
    q = b.div(rem, vf_min)
    main_span = b.mul(q, vf_min)
    main_end = b.add(peel_end, main_span, name="main_end")
    main_bound = loop_bound(main_end, upper)

    # -- peel loop -----------------------------------------------------------
    peel_loop = _clone_scalar_loop(
        loop, lower, peel_bound, "peel", list(loop.init_values)
    )
    peel_loop.annotations["vect_group"] = group
    b.emit(peel_loop)

    # -- preheader: realignment tokens and first aligned loads ---------------
    preheader = Block()
    pre_b = IRBuilder(preheader)

    def affine_at(affine, at: Value, builder: IRBuilder) -> Value:
        acc: Value | None = None
        for term, coeff in affine.terms.items():
            val = at if term is info.iv else term
            piece: Value = val
            if coeff != 1:
                piece = builder.mul(piece, Const(coeff, I32))
            acc = piece if acc is None else builder.add(acc, piece)
        if affine.const != 0 or acc is None:
            c = Const(affine.const, I32)
            acc = c if acc is None else builder.add(acc, c)
        return acc

    def vt(elem) -> VectorType:
        lanes = None if config.is_split else config.target.vf(elem)
        return VectorType(elem, lanes)

    chained = plan.chained_streams()
    for stream in chained:
        idx0 = affine_at(stream.affine, peel_end, pre_b)
        rt = GetRT(stream.array, idx0, stream.hint.mis, stream.hint.mod, name="rt")
        stream.rt = pre_b.emit(tag(rt))
        first = AlignLoad(vt(stream.elem), stream.array, idx0, name="va0")
        stream.carried_init = pre_b.emit(tag(first))

    # -- main vector loop ----------------------------------------------------
    reductions = [legal.reductions[i] for i in sorted(legal.reductions)]
    red_plans = []
    inits: list[Value] = []
    for red in reductions:
        t = red.carried.type
        dot_addend = _dot_candidate(red, loop, min_elem)
        if dot_addend is not None:
            packs = max(1, narrowed(t).size // min_elem.size)
        else:
            packs = max(1, t.size // min_elem.size)
        ident = red.identity
        scalar_in = peel_loop.results[red.index]
        first = InitReduc(vt(t), scalar_in, ident, name="vred")
        inits.append(b.emit(tag(first)))
        for _ in range(packs - 1):
            inits.append(
                b.emit(tag(InitUniform(vt(t), Const(ident, t), name="vred")))
            )
        red_plans.append((red, dot_addend, packs))
    n_red_slots = len(inits)
    for stream in chained:
        inits.append(stream.carried_init)

    main = ForLoop(peel_bound, main_bound, vf_min, inits,
                   iv_name=info.iv.name + "v", kind="vector")
    main.annotations["vect_group"] = group
    main.annotations["valign"] = {
        "has_peel": plan.peel is not None and hints_on and lc is not None,
        "peel_mis": plan.peel.hint.mis if plan.peel else 0,
        "peel_elem_size": plan.peel.elem.size if plan.peel else min_elem.size,
        "lower_const": lc,
    }

    # Wire carried block args.
    slot = 0
    acc_args: list[list[Value]] = []
    for red, dot_addend, packs in red_plans:
        acc_args.append([main.carried[slot + j] for j in range(packs)])
        slot += packs
    for stream in chained:
        stream.carried_arg = main.carried[slot]
        slot += 1

    body_b = IRBuilder(main.body)
    body_ids = {a.id for a in loop.body.args}
    from ..ir import walk as _walk

    for instr in _walk(loop.body):
        body_ids.add(instr.id)

    ctx = VecCtx(
        b=body_b,
        pre=pre_b,
        config=config,
        group=group,
        min_elem=min_elem,
        old_iv=info.iv,
        new_iv=main.iv,
        body_value_ids=body_ids,
        plan=plan,
        vf_of=vf,
    )
    # Map the old reduction accumulators to their vector packs so generic
    # statement vectorization of the update chains picks them up.
    for (red, dot_addend, packs), args in zip(red_plans, acc_args):
        ctx.vecmap[red.carried.id] = list(args)

    term = loop.body.terminator
    assert isinstance(term, Yield)
    for instr in loop.body.instrs:
        if instr is term:
            break
        if isinstance(instr, Store):
            ctx.emit_store(instr)

    yields: list[Value] = []
    for (red, dot_addend, packs), args in zip(red_plans, acc_args):
        if dot_addend is not None:
            updated = ctx.try_dot_product(dot_addend, list(args))
            if updated is None:
                raise PlanError("dot_product pattern failed to materialize")
            yields.extend(updated)
        else:
            final = term.values[red.index]
            yields.extend(ctx.vec(final))
    for stream in chained:
        if stream.packs is None:
            # The stream was never demanded (dead load); keep the carry.
            yields.append(stream.carried_arg)
        else:
            yields.append(stream.next_carry)
    main.body.append(Yield(yields))

    # Splice preheader before the main loop.
    staging.instrs.extend(preheader.instrs)
    b.set_block(staging)
    staging.instrs.append(main)

    # -- combine partial reductions ------------------------------------------
    slot = 0
    scalar_after: dict[int, Value] = {}
    for red, dot_addend, packs in red_plans:
        combined: Value | None = None
        for j in range(packs):
            part = b.emit(tag(Reduce(red.kind, main.results[slot + j], name="red")))
            combined = (
                part
                if combined is None
                else b.binop(_RED_OP[red.kind], combined, part)
            )
        scalar_after[red.index] = combined
        slot += packs

    # -- epilogue -------------------------------------------------------------
    epi_inits = [
        scalar_after.get(i, peel_loop.results[i])
        for i in range(len(loop.carried))
    ]
    epilogue = _clone_scalar_loop(loop, main_bound, upper, "epilogue", epi_inits)
    epilogue.annotations["vect_group"] = group
    b.emit(epilogue)

    result_map = {
        old: new for old, new in zip(loop.results, epilogue.results)
    }
    return VectorizedRegion(staging.instrs, result_map)


def build_vectorized_region(
    info: LoopInfo, legal: Legality, config: VectorizerConfig
) -> VectorizedRegion:
    """Build the full (possibly versioned) replacement for the loop."""
    loop = info.loop
    group = config.next_group()

    if not config.is_split:
        return build_trio(info, legal, config, group,
                          hints_on=config.enable_alignment_opts)

    use_align_versions = config.enable_versioning and config.enable_alignment_opts
    staging = Block()
    b = IRBuilder(staging)
    result_types = [r.type for r in loop.results]

    def tag(instr):
        instr.group = group
        return instr

    # Outer correctness guards first (runtime alias checks, dependence
    # distance hints); they dominate everything else.
    guards: list[Value] = []
    for a1, a2 in legal.alias_pairs:
        guards.append(
            b.emit(tag(VersionGuard("no_alias", [a1, a2], {}, name="galias")))
        )
    if legal.dep_distance_bound is not None:
        guards.append(
            b.emit(
                tag(
                    VersionGuard(
                        "vf_le",
                        [],
                        {
                            "bound": legal.dep_distance_bound,
                            "elem": legal.min_elem.name,
                        },
                        name="gdist",
                    )
                )
            )
        )
    if guards:
        cond = guards[0]
        for g in guards[1:]:
            cond = b.binop("and", cond, g)
        outer = If(cond, result_types)
        staging.instrs.append(outer)
        b.set_block(outer.then_block)

    if use_align_versions:
        arrays = sorted(
            {r.array for r in legal.refs}, key=lambda a: a.name
        )
        guard = b.emit(
            tag(VersionGuard("bases_aligned", list(arrays), {}, name="galign"))
        )
        if_align = If(guard, result_types)
        then_region = build_trio(info, legal, config, group, hints_on=True)
        if_align.then_block.instrs = then_region.instrs
        if_align.then_block.append(
            Yield([then_region.result_map[r] for r in loop.results])
        )
        else_region = build_trio(info, legal, config, group, hints_on=False)
        if_align.else_block.instrs = else_region.instrs
        if_align.else_block.append(
            Yield([else_region.result_map[r] for r in loop.results])
        )
        b.emit(if_align)
        inner_results = list(if_align.results)
    else:
        region = build_trio(info, legal, config, group, hints_on=False)
        for instr in region.instrs:
            b.emit(instr)
        inner_results = [region.result_map[r] for r in loop.results]

    if guards:
        b.emit(Yield(inner_results))
        scalar = _clone_scalar_loop(
            loop, loop.lower, loop.upper, "scalar", list(loop.init_values)
        )
        scalar.annotations["vect_group"] = group
        outer.else_block.append(scalar)
        outer.else_block.append(Yield(list(scalar.results)))
        final: list[Value] = list(outer.results)
    else:
        final = inner_results

    result_map = {old: new for old, new in zip(loop.results, final)}
    return VectorizedRegion(staging.instrs, result_map)
