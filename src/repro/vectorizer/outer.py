"""Outer-loop vectorization (§II.c, the alvinn/dct path).

When the innermost loop of a nest resists vectorization (strided columns, a
recurrence) but the *outer* loop's iterations are independent and access
memory contiguously, the outer loop is vectorized in place: each vector
lane executes a different outer iteration, inner loops remain loops (now
over vector values), and inner loop-carried scalars become loop-carried
vectors — no reduction epilogue is needed because lanes never mix.

The result is wrapped in a ``prefer_outer`` version guard (§III-B.d): the
online compiler folds it from the target's support for the element types
involved, falling back to the original scalar nest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import collect_memrefs, dependences_for_loop, find_reductions
from ..analysis.loopinfo import const_trip_count
from ..ir import (
    Block,
    BlockArg,
    Const,
    ForLoop,
    If,
    IRBuilder,
    Instr,
    LoopBound,
    Store,
    Value,
    VersionGuard,
    Yield,
    walk,
)
from ..ir.types import BOOL, I32, ScalarType, VectorType
from .config import VectorizerConfig
from .legality import Legality
from .loop import _clone_scalar_loop
from .stmt import PlanError, VecCtx, plan_streams

__all__ = ["try_outer_vectorize"]


@dataclass
class _OuterLegal:
    refs: list
    min_elem: ScalarType
    inner_ivs: set
    alias_pairs: list
    reductions: dict


def _check_outer(loop: ForLoop, config: VectorizerConfig) -> _OuterLegal | None:
    if loop.kind != "scalar" or not isinstance(loop.step, Const):
        return None
    if int(loop.step.value) != 1:
        return None
    reductions = find_reductions(loop)
    for index in range(len(loop.carried)):
        if index not in reductions:
            # A non-reduction recurrence over the outer loop.
            return None

    body_ids = {a.id for a in loop.body.args}
    inner_ivs: set[Value] = set()
    inner_loops: list[ForLoop] = []
    for instr in walk(loop.body):
        body_ids.add(instr.id)
        if isinstance(instr, If):
            return None
        if isinstance(instr, ForLoop):
            inner_loops.append(instr)
            inner_ivs.add(instr.iv)
            if not isinstance(instr.step, Const) or int(instr.step.value) != 1:
                return None
            # Inner bounds must be invariant with respect to the outer loop.
            for bound in (instr.lower, instr.upper):
                if not isinstance(bound, Const) and bound.id in body_ids:
                    return None
    if not inner_loops:
        return None

    refs = collect_memrefs(loop)
    elem_types: list[ScalarType] = []
    for ref in refs:
        if ref.affine is None:
            return None
        coeff = ref.affine.coeff(loop.iv)
        if ref.is_store and coeff != 1:
            return None
        if not ref.is_store and coeff not in (0, 1):
            return None
        for term in ref.affine.terms:
            if term is loop.iv or term in inner_ivs:
                continue
            if term.id in body_ids:
                return None
        elem_types.append(ref.array.elem)
        if not config.supports_vector_elem(ref.array.elem):
            return None
    for inner in inner_loops:
        for carried in inner.carried:
            elem_types.append(carried.type)
            if not config.supports_vector_elem(carried.type):
                return None
    for red in reductions.values():
        elem_types.append(red.carried.type)
        if not config.supports_vector_elem(red.carried.type):
            return None
    if not elem_types:
        return None
    sizes = {t.size for t in elem_types if t != BOOL}
    if max(sizes) // min(sizes) > 8:
        return None
    min_elem = min(
        (t for t in elem_types if t != BOOL), key=lambda t: (t.size, t.name)
    )

    trip = const_trip_count(loop)
    trips = {loop.iv: trip} if trip is not None else {}
    for inner in inner_loops:
        t = const_trip_count(inner)
        if t is not None:
            trips[inner.iv] = t
    alias_pairs: list[tuple] = []
    for dep in dependences_for_loop(refs, loop.iv, inner_ivs, trips or None):
        r = dep.result
        if r.kind == "loop_independent":
            continue
        if (
            r.kind == "unknown"
            and dep.src.array is not dep.dst.array
            and dep.src.array.may_alias
            and dep.dst.array.may_alias
        ):
            if config.assume_noalias:
                continue
            pair = (dep.src.array, dep.dst.array)
            if pair not in alias_pairs and (pair[1], pair[0]) not in alias_pairs:
                alias_pairs.append(pair)
            continue
        return None
    return _OuterLegal(refs, min_elem, inner_ivs, alias_pairs, reductions)


def _vectorize_nest_body(
    ctx: VecCtx, old_block: Block, new_builder: IRBuilder
) -> None:
    """Emit the outer-vectorized version of one body block."""
    term = old_block.terminator
    for instr in old_block.instrs:
        if instr is term:
            continue
        if isinstance(instr, Store):
            ctx.emit_store(instr)
        elif isinstance(instr, ForLoop):
            _vectorize_inner_loop(ctx, instr)
        # Pure scalar/vector computations are pulled in on demand.


def _vectorize_inner_loop(ctx: VecCtx, inner: ForLoop) -> None:
    b = ctx.b
    lower = ctx.scalar_subst.get(inner.lower, inner.lower)
    upper = ctx.scalar_subst.get(inner.upper, inner.upper)
    inits: list[Value] = []
    pack_counts: list[int] = []
    for carried, init in zip(inner.carried, inner.init_values):
        packs = ctx.vec(init)
        pack_counts.append(len(packs))
        inits.extend(packs)
    new = ForLoop(lower, upper, Const(1, I32), inits,
                  iv_name=inner.iv.name, kind="inner")
    b.emit(new)
    ctx.scalar_subst[inner.iv] = new.iv
    slot = 0
    for carried, packs_n in zip(inner.carried, pack_counts):
        ctx.vecmap[carried.id] = [new.carried[slot + j] for j in range(packs_n)]
        slot += packs_n
    b.push(new.body)
    _vectorize_nest_body(ctx, inner.body, b)
    term = inner.body.terminator
    assert isinstance(term, Yield)
    yields: list[Value] = []
    for value in term.values:
        yields.extend(ctx.vec(value))
    b.pop()
    new.body.append(Yield(yields))
    slot = 0
    for res, packs_n in zip(inner.results, pack_counts):
        ctx.vecmap[res.id] = [new.results[slot + j] for j in range(packs_n)]
        slot += packs_n


def try_outer_vectorize(loop: ForLoop, config: VectorizerConfig):
    """Attempt outer-loop vectorization; returns a VectorizedRegion or None."""
    from .loop import VectorizedRegion

    legal = _check_outer(loop, config)
    if legal is None:
        return None
    group = config.next_group()
    min_elem = legal.min_elem
    lc = int(loop.lower.value) if isinstance(loop.lower, Const) else None

    fake = Legality(ok=True)
    fake.refs = legal.refs
    fake.min_elem = min_elem
    plan = plan_streams(
        fake, loop.iv, min_elem, config, lc, allow_chains=False
    )
    if plan.strided_loads or plan.strided_stores:
        raise PlanError("strided access under outer-loop vectorization")
    if not config.is_split:
        from .loop import _check_native_store_feasibility

        _check_native_store_feasibility(plan, config, lc)

    staging = Block()
    b = IRBuilder(staging)

    def tag(instr):
        instr.group = group
        return instr

    # prefer_outer guard: the target must support vector arithmetic on every
    # element type of the nest; otherwise run the scalar original.
    elems = sorted({r.array.elem.name for r in legal.refs})
    elems = sorted(set(elems) | {
        red.carried.type.name for red in legal.reductions.values()
    })
    result_types = [r.type for r in loop.results]
    guards: list[Value] = []
    if config.is_split:
        guards.append(
            b.emit(
                tag(
                    VersionGuard(
                        "prefer_outer", [], {"elems": tuple(elems)}, name="gouter"
                    )
                )
            )
        )
        for a1, a2 in legal.alias_pairs:
            guards.append(
                b.emit(tag(VersionGuard("no_alias", [a1, a2], {}, name="galias")))
            )
    cond: Value | None = None
    for g in guards:
        cond = g if cond is None else b.binop("and", cond, g)

    inner_block = staging
    outer_if: If | None = None
    if cond is not None:
        outer_if = If(cond, result_types)
        staging.instrs.append(outer_if)
        inner_block = outer_if.then_block
        b.set_block(inner_block)

    # -- trio over the outer loop --------------------------------------------
    vf_cache: dict[str, Value] = {}

    def vf(elem) -> Value:
        if elem.name not in vf_cache:
            vf_cache[elem.name] = config.vf_value(b, elem, group)
        return vf_cache[elem.name]

    vf_min = vf(min_elem)
    lower, upper = loop.lower, loop.upper

    def loop_bound(vect: Value, scalar: Value) -> Value:
        if config.is_split:
            return b.emit(tag(LoopBound(vect, scalar, name="lb")))
        return vect

    peel_end = lower  # outer-loop vectorization: no peel (stores unit-step)
    peel_bound = loop_bound(peel_end, upper)
    rem = b.sub(upper, peel_end)
    rem = b.max(rem, Const(0, I32))
    q = b.div(rem, vf_min)
    main_span = b.mul(q, vf_min)
    main_end = b.add(peel_end, main_span, name="main_end")
    main_bound = loop_bound(main_end, upper)

    peel_loop = _clone_scalar_loop(
        loop, lower, peel_bound, "peel", list(loop.init_values)
    )
    peel_loop.annotations["vect_group"] = group
    b.emit(peel_loop)

    # Outer reductions accumulate in vector packs across the main loop,
    # just as in inner-loop vectorization.
    from ..ir import InitReduc, InitUniform, Reduce

    def vt(elem):
        lanes = None if config.is_split else config.target.vf(elem)
        from ..ir.types import VectorType as _VT

        return _VT(elem, lanes)

    reductions = [legal.reductions[i] for i in sorted(legal.reductions)]
    red_packs: list[int] = []
    inits: list[Value] = []
    for red in reductions:
        t = red.carried.type
        packs = max(1, t.size // min_elem.size)
        red_packs.append(packs)
        first = InitReduc(vt(t), peel_loop.results[red.index], red.identity,
                          name="vred")
        first.group = group
        inits.append(b.emit(first))
        for _ in range(packs - 1):
            u = InitUniform(vt(t), Const(red.identity, t), name="vred")
            u.group = group
            inits.append(b.emit(u))

    main = ForLoop(peel_bound, main_bound, vf_min, inits,
                   iv_name=loop.iv.name + "v", kind="vector")
    main.annotations["vect_group"] = group
    main.annotations["valign"] = {
        "has_peel": False,
        "peel_mis": 0,
        "peel_elem_size": min_elem.size,
        "lower_const": lc,
    }

    pre = IRBuilder(Block())
    body_ids = {a.id for a in loop.body.args}
    for instr in walk(loop.body):
        body_ids.add(instr.id)
        if isinstance(instr, ForLoop):
            for a in instr.body.args:
                body_ids.add(a.id)

    body_b = IRBuilder(main.body)
    ctx = VecCtx(
        b=body_b,
        pre=pre,
        config=config,
        group=group,
        min_elem=min_elem,
        old_iv=loop.iv,
        new_iv=main.iv,
        body_value_ids=body_ids,
        plan=plan,
        vf_of=vf,
    )
    # Wire outer-reduction accumulators to their carried vector packs.
    slot = 0
    for red, packs in zip(reductions, red_packs):
        ctx.vecmap[red.carried.id] = [
            main.carried[slot + j] for j in range(packs)
        ]
        slot += packs

    _vectorize_nest_body(ctx, loop.body, body_b)
    outer_term = loop.body.terminator
    yields: list[Value] = []
    for red in reductions:
        yields.extend(ctx.vec(outer_term.values[red.index]))
    main.body.append(Yield(yields))

    b.block.instrs.extend(pre.block.instrs)
    b.block.instrs.append(main)

    # Combine partial vector accumulators back into scalars (as in the
    # inner-loop trio).
    red_op = {"plus": "add", "min": "min", "max": "max"}
    slot = 0
    scalar_after: dict[int, Value] = {}
    for red, packs in zip(reductions, red_packs):
        combined: Value | None = None
        for j in range(packs):
            r = Reduce(red.kind, main.results[slot + j], name="red")
            r.group = group
            part = b.emit(r)
            combined = (
                part
                if combined is None
                else b.binop(red_op[red.kind], combined, part)
            )
        scalar_after[red.index] = combined
        slot += packs

    epi_inits = [
        scalar_after.get(i, peel_loop.results[i])
        for i in range(len(loop.carried))
    ]
    epilogue = _clone_scalar_loop(
        loop, main_bound, upper, "epilogue", epi_inits
    )
    epilogue.annotations["vect_group"] = group
    b.emit(epilogue)
    final: list[Value] = list(epilogue.results)

    if outer_if is not None:
        inner_block.append(Yield(final))
        scalar = _clone_scalar_loop(
            loop, loop.lower, loop.upper, "scalar", list(loop.init_values)
        )
        scalar.annotations["vect_group"] = group
        outer_if.else_block.append(scalar)
        outer_if.else_block.append(Yield(list(scalar.results)))
        final = list(outer_if.results)

    result_map = {old_r: new_r for old_r, new_r in zip(loop.results, final)}
    return VectorizedRegion(staging.instrs, result_map)
