"""Superword-level parallelism (SLP) via loop re-rolling (§II.c).

Detects the classic SLP shape — a loop body that is a group of ``g``
isomorphic statements storing to ``g`` adjacent elements (a hand-unrolled
frame loop, e.g. mix_streams' four interleaved audio channels) — and
re-rolls it into a single *flat* vectorized loop over elements:

* stores ``out[g*i + p] = f_p(in[g*i + p])`` for p in 0..g-1 become one
  vector store per VF elements;
* per-position constants become an ``init_pattern`` periodic vector;
* the whole version is guarded by ``version_guard_slp_group`` which the
  online compiler folds from ``VF % g == 0`` — a target whose VF cannot
  tile the group (or a scalarizing target) runs the original loop.

The alignment story follows the paper's mix-streams observation: the split
flow emits misalignment hints (so a JIT that aligns bases uses aligned
accesses), while the native compiler — which does not version SLP groups
for alignment — uses plain misaligned accesses.  That asymmetry is exactly
what makes split-vectorized mix_streams *faster* than native in Figure 6a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import collect_memrefs
from ..analysis.affine import Affine
from ..ir import (
    BinOp,
    Block,
    Cmp,
    Const,
    ForLoop,
    If,
    InitPattern,
    InitUniform,
    IRBuilder,
    Instr,
    Load,
    LoopBound,
    RealignLoad,
    Select,
    Store,
    UnOp,
    Value,
    VersionGuard,
    VStore,
    Yield,
    walk,
)
from ..ir.idioms import MOD_HINT
from ..ir.types import I32, ScalarType, VectorType
from .config import VectorizerConfig
from .loop import VectorizedRegion, _clone_scalar_loop
from .stmt import PlanError

__all__ = ["try_slp_vectorize"]

_MAX_GROUP = 8


@dataclass
class _TreeMatch:
    """Leaf substitutions discovered while matching the g statement trees."""

    #: id of a node in tree 0 -> per-position constants (pattern leaf).
    patterns: dict[int, list] = field(default_factory=dict)
    #: id of a Load in tree 0 -> (array, base affine offset of position 0).
    loads: dict[int, tuple] = field(default_factory=dict)


def _affine_sig(affine: Affine):
    return tuple(sorted((v.id, c) for v, c in affine.terms.items()))


def _match_trees(
    nodes: list[Value],
    iv,
    g: int,
    match: _TreeMatch,
    memo: dict,
    body_ids: set[int],
) -> bool:
    """Structurally match the g per-position expression trees."""
    first = nodes[0]
    key = tuple(n.id for n in nodes)
    if key in memo:
        return memo[key]

    def done(ok: bool) -> bool:
        memo[key] = ok
        return ok

    if all(isinstance(n, Const) for n in nodes):
        if any(n.type != first.type for n in nodes):
            return done(False)
        values = [n.value for n in nodes]
        if len(set(values)) > 1:
            match.patterns[first.id] = values
        return done(True)
    if all(n is first for n in nodes):
        # The same SSA value in every position: must be loop-invariant.
        if first.id in body_ids and not isinstance(first, Load):
            return done(False)
        return done(first.id not in body_ids)
    if all(isinstance(n, Load) for n in nodes):
        arrays = {n.array.id for n in nodes}
        if len(arrays) != 1:
            return done(False)
        from ..analysis.memrefs import linearize

        affines = [linearize(n.array, n.indices) for n in nodes]
        if any(a is None for a in affines):
            return done(False)
        base = affines[0]
        if base.coeff(iv) != g:
            return done(False)
        for p, a in enumerate(affines):
            if _affine_sig(a) != _affine_sig(base) or a.const != base.const + p:
                return done(False)
            for term in a.terms:
                if term is not iv and term.id in body_ids:
                    return done(False)
        match.loads[first.id] = (first.array, base)
        return done(True)
    if all(isinstance(n, BinOp) for n in nodes):
        if any(n.op != first.op or n.type != first.type for n in nodes):
            return done(False)
        return done(
            _match_trees([n.lhs for n in nodes], iv, g, match, memo, body_ids)
            and _match_trees([n.rhs for n in nodes], iv, g, match, memo, body_ids)
        )
    if all(isinstance(n, UnOp) for n in nodes):
        if any(n.op != first.op for n in nodes):
            return done(False)
        return done(
            _match_trees([n.value for n in nodes], iv, g, match, memo, body_ids)
        )
    if all(isinstance(n, Select) for n in nodes):
        return done(
            _match_trees([n.cond for n in nodes], iv, g, match, memo, body_ids)
            and _match_trees([n.if_true for n in nodes], iv, g, match, memo, body_ids)
            and _match_trees([n.if_false for n in nodes], iv, g, match, memo, body_ids)
        )
    if all(isinstance(n, Cmp) for n in nodes):
        if any(n.op != first.op for n in nodes):
            return done(False)
        return done(
            _match_trees([n.lhs for n in nodes], iv, g, match, memo, body_ids)
            and _match_trees([n.rhs for n in nodes], iv, g, match, memo, body_ids)
        )
    return done(False)


def try_slp_vectorize(loop: ForLoop, config: VectorizerConfig):
    """Attempt SLP re-rolling; returns a VectorizedRegion or None."""
    if not config.enable_slp or loop.kind != "scalar":
        return None
    if loop.carried or not isinstance(loop.step, Const) or int(loop.step.value) != 1:
        return None
    if any(isinstance(x, (ForLoop, If)) for x in walk(loop.body)):
        return None

    body_ids = {a.id for a in loop.body.args}
    for instr in walk(loop.body):
        body_ids.add(instr.id)

    refs = collect_memrefs(loop)
    stores = [r for r in refs if r.is_store]
    g = len(stores)
    if not 2 <= g <= _MAX_GROUP:
        return None
    arrays = {r.array.id for r in stores}
    if len(arrays) != 1:
        return None
    if any(r.affine is None for r in refs):
        return None
    store_arr = stores[0].array
    if any(r.affine.coeff(loop.iv) != g for r in stores):
        return None
    sig = _affine_sig(stores[0].affine)
    if any(_affine_sig(r.affine) != sig for r in stores):
        return None
    by_const = sorted(stores, key=lambda r: r.affine.const)
    sbase = by_const[0].affine.const
    if [r.affine.const - sbase for r in by_const] != list(range(g)):
        return None
    for term in stores[0].affine.terms:
        if term is not loop.iv and term.id in body_ids:
            return None

    elem = store_arr.elem
    # Widening inside SLP groups is out of scope; require a homogeneous
    # element width across the group trees.
    value_nodes = [r.instr.value for r in by_const]
    for node in value_nodes:
        if isinstance(node.type, ScalarType) and node.type.size != elem.size:
            return None
    if not config.supports_vector_elem(elem):
        return None

    match = _TreeMatch()
    if not _match_trees(value_nodes, loop.iv, g, match, {}, body_ids):
        return None
    # Every load in the trees must carry a consistent width.
    for lid, (arr, base) in match.loads.items():
        if arr.elem.size != elem.size:
            return None

    # Alignment policy.  Split flow: hints + the bases_aligned story, so a
    # JIT that aligns allocations gets aligned accesses.  Native flow: no
    # alignment *versioning* for SLP groups — on targets with misaligned
    # accesses GCC simply emits them (the paper's mix-streams observation
    # on SSE); on aligned-only targets it relies on the forced base
    # alignment of globals, requiring the group to be provably aligned.
    lc0 = int(loop.lower.value) if isinstance(loop.lower, Const) else None
    if config.is_split:
        hints_on = config.enable_alignment_opts
    else:
        vf = config.target.vf(elem)
        if vf < g or vf % g != 0:
            return None
        hints_on = not config.target.supports_misaligned_store
        if hints_on:
            vsz = config.target.vector_size
            if lc0 is None or ((g * lc0 + sbase) * elem.size) % vsz != 0:
                return None

    group = config.next_group()
    staging = Block()
    b = IRBuilder(staging)

    def tag(instr):
        instr.group = group
        return instr

    result_types: list = []  # the loop carries nothing
    outer_if: If | None = None
    if config.is_split:
        guard = b.emit(
            tag(
                VersionGuard(
                    "slp_group", [], {"group": g, "elem": elem.name}, name="gslp"
                )
            )
        )
        outer_if = If(guard, result_types)
        staging.instrs.append(outer_if)
        b.set_block(outer_if.then_block)

    vf_val = config.vf_value(b, elem, group)
    lower, upper = loop.lower, loop.upper
    lc = int(lower.value) if isinstance(lower, Const) else None

    def hint_mis(base_const: int) -> tuple[int, int]:
        if not hints_on or lc is None:
            return 0, 0
        mis = ((g * lc + base_const) * elem.size) % MOD_HINT
        return mis, MOD_HINT

    g_const = Const(g, I32)
    jlo = b.add(b.mul(lower, g_const), Const(sbase, I32), name="jlo")
    jhi = b.add(b.mul(upper, g_const), Const(sbase, I32), name="jhi")
    rem = b.max(b.sub(jhi, jlo), Const(0, I32))
    q = b.div(rem, vf_val)
    main_span = b.mul(q, vf_val)
    main_end = b.add(jlo, main_span, name="jmain_end")

    def loop_bound(vect: Value, scalar: Value) -> Value:
        if config.is_split:
            return b.emit(tag(LoopBound(vect, scalar, name="lb")))
        return vect

    main_lower = loop_bound(jlo, jlo)
    main_upper = loop_bound(main_end, jlo)

    main = ForLoop(main_lower, main_upper, vf_val, [],
                   iv_name="j", kind="vector")
    main.annotations["vect_group"] = group
    main.annotations["valign"] = {
        "has_peel": False,
        "peel_mis": 0,
        "peel_elem_size": elem.size,
        "lower_const": lc,
    }
    body_b = IRBuilder(main.body)
    vt = VectorType(elem, None if config.is_split else config.target.vf(elem))

    cache: dict[int, Value] = {}

    def emit_tree(node: Value) -> Value:
        if node.id in cache:
            return cache[node.id]
        out: Value
        if node.id in match.patterns:
            out = body_b.emit(
                tag(InitPattern(vt, tuple(match.patterns[node.id]), name="vpat"))
            )
        elif isinstance(node, Const):
            out = body_b.emit(tag(InitUniform(vt, node, name="splat")))
        elif node.id in match.loads:
            arr, base = match.loads[node.id]
            delta = base.const - sbase
            idx = (
                main.iv
                if delta == 0
                else body_b.add(main.iv, Const(delta, I32))
            )
            mis, mod = hint_mis(base.const)
            rl = RealignLoad(vt, arr, idx, None, None, None, mis, mod, name="vin")
            rl.step_bytes = elem.size
            out = body_b.emit(tag(rl))
        elif not isinstance(node, Instr) or node.id not in body_ids:
            out = body_b.emit(tag(InitUniform(vt, node, name="splat")))
        elif isinstance(node, BinOp):
            out = body_b.binop(node.op, emit_tree(node.lhs), emit_tree(node.rhs))
        elif isinstance(node, UnOp):
            out = body_b.emit(UnOp(node.op, emit_tree(node.value)))
        elif isinstance(node, Select):
            out = body_b.select(
                emit_tree(node.cond),
                emit_tree(node.if_true),
                emit_tree(node.if_false),
            )
        elif isinstance(node, Cmp):
            out = body_b.cmp(node.op, emit_tree(node.lhs), emit_tree(node.rhs))
        else:
            raise PlanError(f"SLP tree node {node!r} unsupported")
        cache[node.id] = out
        return out

    value_vec = emit_tree(value_nodes[0])
    mis, mod = hint_mis(sbase)
    vs = VStore(store_arr, main.iv, value_vec, mis, mod, name="vout")
    vs.step_bytes = elem.size * 1
    body_b.emit(tag(vs))
    main.body.append(Yield([]))
    b.emit(main)

    # Epilogue in original frame units: frames completed = span / g.
    done = b.div(b.sub(main_end, jlo), g_const)
    epi_lower = b.add(lower, done)
    epi_lower_b = loop_bound(epi_lower, lower)
    epilogue = _clone_scalar_loop(loop, epi_lower_b, upper, "epilogue", [])
    epilogue.annotations["vect_group"] = group
    b.emit(epilogue)

    if outer_if is not None:
        b.emit(Yield([]))
        scalar = _clone_scalar_loop(
            loop, loop.lower, loop.upper, "scalar", list(loop.init_values)
        )
        scalar.annotations["vect_group"] = group
        outer_if.else_block.append(scalar)
        outer_if.else_block.append(Yield([]))

    return VectorizedRegion(staging.instrs, {})
