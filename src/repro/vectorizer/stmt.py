"""Statement vectorization: scalar body IR -> split-layer vector IR.

This is the engine shared by inner-loop, outer-loop and SLP vectorization.
Every scalar SSA value of element type T is represented by ``k`` vector
*packs*, where ``k = sizeof(T) / sizeof(T_min)`` and T_min is the smallest
element type in the loop — GCC's "vector pair" scheme for mixed-width
computations, which is what makes the widening kernels (dissolve_s8,
sad_s8) vectorizable at the narrow type's full VF.

Memory accesses are planned into *streams* first (:func:`plan_streams`):

* unit-stride streams get the paper's optimized realignment chain —
  ``get_rt`` + preheader ``align_load`` + per-iteration ``align_load`` and
  ``realign_load`` with cross-iteration reuse of the last loaded vector
  (Figure 2d / Figure 3a);
* strided streams (``a[2i]``, ``a[2i+1]``) load ``s`` consecutive vectors
  and split them with ``extract`` / merge with ``interleave`` (Table 1);
* invariant accesses become scalar loads plus ``init_uniform`` splats.

Idiom recognition maps multiply-of-converts onto ``widen_mult_hi/lo`` and
reduction-of-widening-multiply onto ``dot_product``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.affine import Affine, affine_of
from ..errors import ReproError
from ..analysis.alignment import MisalignmentHint, misalignment_hint
from ..analysis.memrefs import linearize
from ..ir import (
    ALoad,
    AlignLoad,
    BinOp,
    BlockArg,
    Cmp,
    Const,
    Convert,
    CvtIntFp,
    DotProduct,
    Extract,
    GetRT,
    InitAffine,
    InitPattern,
    InitReduc,
    InitUniform,
    Interleave,
    IRBuilder,
    Load,
    Pack,
    RealignLoad,
    Select,
    Store,
    UnOp,
    Unpack,
    Value,
    VStore,
    WidenMult,
)
from ..ir.types import BOOL, I32, ScalarType, VectorType, narrowed, widened
from .config import VectorizerConfig
from .legality import Legality

__all__ = [
    "PlanError",
    "UnitLoadStream",
    "StridedLoadGroup",
    "UnitStorePlan",
    "StridedStoreGroup",
    "StreamPlan",
    "plan_streams",
    "VecCtx",
]


class PlanError(ReproError):
    """Raised when access shapes defeat the stream planner; the driver
    leaves the loop scalar."""


def _affine_key(array, affine: Affine, drop_const: bool = False):
    terms = tuple(sorted((v.id, c) for v, c in affine.terms.items()))
    return (array.id, terms, None if drop_const else affine.const)


@dataclass
class UnitLoadStream:
    """A unit-stride load stream (one or more identical loads)."""

    array: object
    affine: Affine
    elem: ScalarType
    k: int
    hint: MisalignmentHint
    use_chain: bool
    load_ids: set[int] = field(default_factory=set)
    # codegen state
    rt: Value | None = None
    carried_init: Value | None = None
    carried_arg: Value | None = None
    next_carry: Value | None = None
    packs: list[Value] | None = None


@dataclass
class StridedLoadGroup:
    """Loads a[s*i + c] sharing a window; phases extracted per offset."""

    array: object
    stride: int
    base_affine: Affine
    elem: ScalarType
    hint: MisalignmentHint
    offsets: dict[int, int] = field(default_factory=dict)  # load id -> phase
    packs_by_offset: dict[int, Value] = field(default_factory=dict)


@dataclass
class UnitStorePlan:
    array: object
    affine: Affine
    elem: ScalarType
    k: int
    hint: MisalignmentHint
    is_peel_target: bool = False
    step_bytes: int = 0


@dataclass
class StridedStoreGroup:
    array: object
    base_affine: Affine
    elem: ScalarType
    hint: MisalignmentHint
    store_offsets: dict[int, int] = field(default_factory=dict)  # store id -> phase
    pending: dict[int, Value] = field(default_factory=dict)


@dataclass
class StreamPlan:
    """All memory access plans of one vectorized loop."""

    unit_loads: dict = field(default_factory=dict)      # key -> UnitLoadStream
    load_plan: dict = field(default_factory=dict)       # load id -> plan obj
    strided_loads: list = field(default_factory=list)
    unit_stores: dict = field(default_factory=dict)     # store id -> UnitStorePlan
    strided_stores: list = field(default_factory=list)
    store_plan: dict = field(default_factory=dict)      # store id -> plan obj
    invariant_loads: set = field(default_factory=set)   # load ids
    peel: UnitStorePlan | None = None

    def chained_streams(self) -> list[UnitLoadStream]:
        return [
            s for s in self.unit_loads.values() if s.use_chain
        ]


def plan_streams(
    legal: Legality,
    iv: Value,
    min_elem: ScalarType,
    config: VectorizerConfig,
    lower_const: int | None,
    allow_chains: bool = True,
) -> StreamPlan:
    """Plan every memory reference of the candidate loop.

    Raises :class:`PlanError` when a shape is unsupported (odd strided-store
    sets, widened strided loads, ...).
    """
    plan = StreamPlan()
    with_hints = config.enable_alignment_opts

    def hint_for(affine: Affine, elem: ScalarType) -> MisalignmentHint:
        if not with_hints:
            return MisalignmentHint(0, 0)
        return misalignment_hint(affine, elem.size, iv, lower_const)

    strided_load_groups: dict = {}
    strided_store_groups: dict = {}

    for ref in legal.refs:
        stride = ref.affine.coeff(iv)
        elem = ref.array.elem
        k = max(1, elem.size // min_elem.size)
        if not ref.is_store:
            if stride == 0:
                plan.invariant_loads.add(ref.instr.id)
                plan.load_plan[ref.instr.id] = "invariant"
                continue
            if stride == 1:
                key = _affine_key(ref.array, ref.affine)
                stream = plan.unit_loads.get(key)
                if stream is None:
                    stream = UnitLoadStream(
                        array=ref.array,
                        affine=ref.affine,
                        elem=elem,
                        k=k,
                        hint=hint_for(ref.affine, elem),
                        use_chain=(
                            allow_chains
                            and config.enable_realign_reuse
                            and with_hints
                        ),
                    )
                    plan.unit_loads[key] = stream
                stream.load_ids.add(ref.instr.id)
                plan.load_plan[ref.instr.id] = stream
                continue
            # Strided load.
            if k != 1:
                raise PlanError("strided load with widened elements")
            gkey = _affine_key(ref.array, ref.affine, drop_const=True) + (
                "load",
                stride,
                ref.affine.const // stride,
            )
            group = strided_load_groups.get(gkey)
            base_const = (ref.affine.const // stride) * stride
            if group is None:
                base = Affine(dict(ref.affine.terms), base_const)
                group = StridedLoadGroup(
                    array=ref.array,
                    stride=stride,
                    base_affine=base,
                    elem=elem,
                    hint=hint_for(base, elem),
                )
                strided_load_groups[gkey] = group
                plan.strided_loads.append(group)
            offset = ref.affine.const - group.base_affine.const
            if not 0 <= offset < stride:
                raise PlanError("strided load phase outside window")
            group.offsets[ref.instr.id] = offset
            plan.load_plan[ref.instr.id] = group
        else:
            if stride == 1:
                splan = UnitStorePlan(
                    array=ref.array,
                    affine=ref.affine,
                    elem=elem,
                    k=k,
                    hint=hint_for(ref.affine, elem),
                    step_bytes=elem.size,
                )
                plan.unit_stores[ref.instr.id] = splan
                plan.store_plan[ref.instr.id] = splan
                continue
            if stride != 2:
                raise PlanError(f"store stride {stride} unsupported")
            if k != 1:
                raise PlanError("strided store with widened elements")
            gkey = _affine_key(ref.array, ref.affine, drop_const=True) + (
                "store",
                stride,
                ref.affine.const // stride,
            )
            group = strided_store_groups.get(gkey)
            base_const = (ref.affine.const // stride) * stride
            if group is None:
                base = Affine(dict(ref.affine.terms), base_const)
                group = StridedStoreGroup(
                    array=ref.array,
                    base_affine=base,
                    elem=elem,
                    hint=hint_for(base, elem),
                )
                strided_store_groups[gkey] = group
                plan.strided_stores.append(group)
            offset = ref.affine.const - group.base_affine.const
            if not 0 <= offset < 2:
                raise PlanError("strided store phase outside window")
            if offset in group.store_offsets.values():
                raise PlanError("duplicate strided store phase")
            group.store_offsets[ref.instr.id] = offset
            plan.store_plan[ref.instr.id] = group

    for group in plan.strided_stores:
        if sorted(group.store_offsets.values()) != [0, 1]:
            raise PlanError("incomplete strided store pair")

    # Streams on arrays that the loop also stores to cannot carry the
    # cross-iteration realignment chain: an intervening store invalidates
    # the cached window, and the loads are re-issued after each store to
    # get store-to-load forwarding through memory.
    stored_arrays = {r.array.id for r in legal.refs if r.is_store}
    for stream in plan.unit_loads.values():
        if stream.array.id in stored_arrays:
            stream.use_chain = False

    # Pick the peel target: the first unit store with a known hint.
    if with_hints and lower_const is not None:
        for splan in plan.unit_stores.values():
            if splan.hint.known:
                splan.is_peel_target = True
                plan.peel = splan
                break
    return plan


class VecCtx:
    """Per-loop vectorization context; owns the scalar->vector value map."""

    def __init__(
        self,
        b: IRBuilder,
        pre: IRBuilder,
        config: VectorizerConfig,
        group: int,
        min_elem: ScalarType,
        old_iv: BlockArg,
        new_iv: Value,
        body_value_ids: set[int],
        plan: StreamPlan,
        vf_of,
        scalar_subst: dict | None = None,
    ) -> None:
        self.b = b
        self.pre = pre
        self.config = config
        self.group = group
        self.min_elem = min_elem
        self.old_iv = old_iv
        self.new_iv = new_iv
        self.body_ids = body_value_ids
        self.plan = plan
        self.vf_of = vf_of  # callable: ScalarType -> Value (prologue-cached)
        self.vecmap: dict[int, list[Value]] = {}
        self._splats: dict[tuple, Value] = {}
        self._iv_packs: list[Value] | None = None
        #: old scalar value -> new scalar value (inner-loop IVs during
        #: outer-loop vectorization).
        self.scalar_subst: dict[Value, Value] = scalar_subst or {}

    # -- helpers -------------------------------------------------------------

    def k(self, t: ScalarType) -> int:
        if t == BOOL:
            return 1
        return max(1, t.size // self.min_elem.size)

    def vt(self, t: ScalarType) -> VectorType:
        lanes = None if self.config.is_split else self.config.target.vf(t)
        return VectorType(t, lanes)

    def is_invariant(self, v: Value) -> bool:
        return v.id not in self.body_ids

    def scalar_clone(self, v: Value) -> Value:
        """Recreate a pure scalar computation inside the new body,
        substituting inner-loop IVs.  Used for invariant-load subscripts
        during outer-loop vectorization."""
        if v in self.scalar_subst:
            return self.scalar_subst[v]
        if isinstance(v, Const) or self.is_invariant(v):
            return v
        if isinstance(v, BinOp):
            out = self.b.binop(
                v.op, self.scalar_clone(v.lhs), self.scalar_clone(v.rhs)
            )
            self.scalar_subst[v] = out
            return out
        if isinstance(v, UnOp):
            out = self.b.emit(UnOp(v.op, self.scalar_clone(v.value)))
            self.scalar_subst[v] = out
            return out
        if isinstance(v, Convert):
            out = self.b.emit(Convert(self.scalar_clone(v.value), v.to))
            self.scalar_subst[v] = out
            return out
        raise PlanError(f"cannot clone scalar value {v!r}")

    def _tag(self, instr):
        if hasattr(instr, "group"):
            instr.group = self.group
        return instr

    def splat(self, v: Value, t: ScalarType, hoist: bool | None = None) -> Value:
        key = (v.id, t.name)
        if key in self._splats:
            return self._splats[key]
        if hoist is None:
            hoist = self.is_invariant(v) or isinstance(v, Const)
        builder = self.pre if hoist else self.b
        out = builder.emit(self._tag(InitUniform(self.vt(t), v, name="splat")))
        if builder is self.pre:
            self._splats[key] = out
        return out

    def emit_affine(self, affine: Affine, builder: IRBuilder | None = None) -> Value:
        """Rebuild an affine subscript with the old IV replaced by the new
        element counter.  Terms over invariants are used directly."""
        b = builder or self.b
        acc: Value | None = None
        for term, coeff in affine.terms.items():
            if term is self.old_iv:
                val = self.new_iv
            else:
                val = self.scalar_subst.get(term, term)
            piece: Value = val
            if coeff != 1:
                piece = b.mul(piece, Const(coeff, I32))
            acc = piece if acc is None else b.add(acc, piece)
        if affine.const != 0 or acc is None:
            c = Const(affine.const, I32)
            acc = c if acc is None else b.add(acc, c)
        return acc

    def index_plus_packs(self, base: Value, j: int, elem: ScalarType) -> Value:
        """``base + j * VF(elem)`` — the index of pack ``j``."""
        if j == 0:
            return base
        step = self.vf_of(elem)
        if j != 1:
            step = self.b.mul(step, Const(j, I32))
        return self.b.add(base, step)

    def iv_packs(self) -> list[Value]:
        """Vector(s) holding the lane-wise induction values (init_affine)."""
        if self._iv_packs is None:
            packs = []
            for j in range(self.k(I32)):
                base = self.index_plus_packs(self.new_iv, j, I32)
                packs.append(
                    self.b.emit(
                        self._tag(
                            InitAffine(self.vt(I32), base, Const(1, I32), name="viv")
                        )
                    )
                )
            self._iv_packs = packs
        return self._iv_packs

    # -- memory --------------------------------------------------------------

    def emit_unit_load(self, stream: UnitLoadStream) -> list[Value]:
        if stream.packs is not None:
            return stream.packs
        base = self.emit_affine(stream.affine)
        mis, mod = stream.hint.mis, stream.hint.mod
        packs: list[Value] = []
        if stream.use_chain:
            prev = stream.carried_arg
            assert prev is not None and stream.rt is not None
            news: list[Value] = []
            for j in range(1, stream.k + 1):
                idx = self.index_plus_packs(base, j, stream.elem)
                w = self.b.emit(
                    self._tag(
                        AlignLoad(self.vt(stream.elem), stream.array, idx, name="va")
                    )
                )
                news.append(w)
            chain = [prev] + news
            for j in range(stream.k):
                idx = self.index_plus_packs(base, j, stream.elem)
                rl = RealignLoad(
                    self.vt(stream.elem), stream.array, idx,
                    chain[j], chain[j + 1], stream.rt, mis, mod, name="vx",
                )
                rl.step_bytes = stream.elem.size
                packs.append(self.b.emit(self._tag(rl)))
            stream.next_carry = news[-1]
        else:
            for j in range(stream.k):
                idx = self.index_plus_packs(base, j, stream.elem)
                rl = RealignLoad(
                    self.vt(stream.elem), stream.array, idx,
                    None, None, None, mis, mod, name="vx",
                )
                rl.step_bytes = stream.elem.size
                packs.append(self.b.emit(self._tag(rl)))
        stream.packs = packs
        return packs

    def emit_strided_load(self, group: StridedLoadGroup, offset: int) -> Value:
        if offset in group.packs_by_offset:
            return group.packs_by_offset[offset]
        base = self.emit_affine(group.base_affine)
        vecs = []
        for l in range(group.stride):
            idx = self.index_plus_packs(base, l, group.elem)
            rl = RealignLoad(
                self.vt(group.elem), group.array, idx,
                None, None, None, group.hint.mis, group.hint.mod, name="vw",
            )
            rl.step_bytes = group.elem.size * group.stride
            vecs.append(self.b.emit(self._tag(rl)))
        for phase in sorted(set(group.offsets.values())):
            group.packs_by_offset[phase] = self.b.emit(
                self._tag(
                    Extract(group.stride, phase, vecs, name=f"ph{phase}")
                )
            )
        return group.packs_by_offset[offset]

    def _invalidate_loads(self, array) -> None:
        """Forget cached load packs on ``array`` after a store to it, so a
        later load in the same iteration re-reads the stored values."""
        for stream in self.plan.unit_loads.values():
            if stream.array.id == array.id:
                stream.packs = None
        for group in self.plan.strided_loads:
            if group.array.id == array.id:
                group.packs_by_offset.clear()

    def emit_store(self, store: Store) -> None:
        plan = self.plan.store_plan[store.id]
        value_packs = self.vec(store.value)
        if isinstance(plan, UnitStorePlan):
            base = self.emit_affine(plan.affine)
            for j, v in enumerate(value_packs):
                idx = self.index_plus_packs(base, j, plan.elem)
                vs = VStore(
                    plan.array, idx, v, plan.hint.mis, plan.hint.mod, name="vst"
                )
                vs.aligned_by_peel = plan.is_peel_target
                vs.step_bytes = plan.step_bytes
                self.b.emit(self._tag(vs))
            self._invalidate_loads(plan.array)
            return
        assert isinstance(plan, StridedStoreGroup)
        phase = plan.store_offsets[store.id]
        plan.pending[phase] = value_packs[0]
        if len(plan.pending) < 2:
            return
        va, vb = plan.pending[0], plan.pending[1]
        base = self.emit_affine(plan.base_affine)
        lo = self.b.emit(self._tag(Interleave("lo", va, vb, name="ilo")))
        hi = self.b.emit(self._tag(Interleave("hi", va, vb, name="ihi")))
        for j, v in enumerate((lo, hi)):
            idx = self.index_plus_packs(base, j, plan.elem)
            vs = VStore(plan.array, idx, v, plan.hint.mis, plan.hint.mod, name="vst")
            vs.aligned_by_peel = False
            vs.step_bytes = plan.elem.size * 2
            self.b.emit(self._tag(vs))
        plan.pending.clear()
        self._invalidate_loads(plan.array)

    # -- the recursive value vectorizer -------------------------------------

    def vec(self, v: Value) -> list[Value]:
        if v.id in self.vecmap:
            return self.vecmap[v.id]
        out = self._vec(v)
        self.vecmap[v.id] = out
        return out

    def _vec(self, v: Value) -> list[Value]:
        if isinstance(v, Const):
            return [self.splat(v, v.type)] * self.k(v.type)
        if v is self.old_iv:
            return self.iv_packs()
        if self.is_invariant(v):
            return [self.splat(v, v.type)] * self.k(v.type)
        if isinstance(v, Load):
            plan = self.plan.load_plan[v.id]
            if plan == "invariant":
                # Re-emit the scalar load (invariant w.r.t. the vectorized
                # IV; its indices may still involve inner-loop IVs, which
                # get cloned into the new body), then splat it.
                indices = [self.scalar_clone(ix) for ix in v.indices]
                scalar = self.b.load(v.array, indices)
                return [self.splat(scalar, v.type, hoist=False)] * self.k(v.type)
            if isinstance(plan, UnitLoadStream):
                return self.emit_unit_load(plan)
            assert isinstance(plan, StridedLoadGroup)
            return [self.emit_strided_load(plan, plan.offsets[v.id])]
        if isinstance(v, Convert):
            return self._vec_convert(v)
        if isinstance(v, BinOp):
            widen = self._try_widen_mult(v)
            if widen is not None:
                return widen
            lhs = self.vec(v.lhs)
            rhs = self.vec(v.rhs)
            return [
                self.b.binop(v.op, a, b, name="v" + v.op)
                for a, b in zip(lhs, rhs)
            ]
        if isinstance(v, UnOp):
            src = self.vec(v.value)
            return [self.b.emit(UnOp(v.op, p, name="v" + v.op)) for p in src]
        if isinstance(v, Cmp):
            lhs = self.vec(v.lhs)
            rhs = self.vec(v.rhs)
            return [
                self.b.cmp(v.op, a, b, name="vmask") for a, b in zip(lhs, rhs)
            ]
        if isinstance(v, Select):
            cond = self.vec(v.cond)
            t = self.vec(v.if_true)
            f = self.vec(v.if_false)
            if len(cond) == 1 and len(t) > 1:
                cond = cond * len(t)
            return [
                self.b.select(c, a, bb, name="vsel")
                for c, a, bb in zip(cond, t, f)
            ]
        raise PlanError(f"cannot vectorize value {v!r}")

    def _vec_convert(self, cvt: Convert) -> list[Value]:
        src_t = cvt.value.type
        dst_t = cvt.to
        packs = self.vec(cvt.value)
        return self._convert_packs(packs, src_t, dst_t)

    def _convert_packs(
        self, packs: list[Value], src_t: ScalarType, dst_t: ScalarType
    ) -> list[Value]:
        if src_t == dst_t:
            return packs
        if src_t.size == dst_t.size:
            return [
                self.b.emit(self._tag(CvtIntFp(p, dst_t, name="vcvt")))
                for p in packs
            ]
        if dst_t.size > src_t.size:
            # Widen one level, recurse.  Int widening via unpack; float via
            # the same idiom (promotion semantics).
            mid_t = widened(src_t)
            widened_packs: list[Value] = []
            for p in packs:
                widened_packs.append(
                    self.b.emit(self._tag(Unpack("lo", p, name="vunp")))
                )
                widened_packs.append(
                    self.b.emit(self._tag(Unpack("hi", p, name="vunp")))
                )
            if mid_t.is_float != src_t.is_float:
                # e.g. i32 -> f64 goes i32 -> i64 -> f64? Not supported in
                # hardware idioms; convert width-matched first instead.
                raise PlanError(f"conversion {src_t} -> {dst_t} unsupported")
            return self._convert_packs(widened_packs, mid_t, dst_t)
        # Narrowing one level, recurse.
        mid_t = narrowed(src_t)
        if len(packs) % 2 != 0:
            raise PlanError("cannot narrow an odd pack count")
        narrowed_packs = [
            self.b.emit(self._tag(Pack(packs[2 * j], packs[2 * j + 1], name="vpk")))
            for j in range(len(packs) // 2)
        ]
        return self._convert_packs(narrowed_packs, mid_t, dst_t)

    def _narrow_operand(self, v: Value, narrow_t: ScalarType) -> list[Value] | None:
        """Packs of ``v`` at the *narrow* type, if cheaply available."""
        if isinstance(v, Convert) and isinstance(v.value, Const):
            v = Const(v.value.value, v.to) if not v.to.is_float else v
        if isinstance(v, Convert) and v.value.type == narrow_t:
            return self.vec(v.value)
        if isinstance(v, Const) and not v.type.is_float:
            val = int(v.value)
            if narrow_t.min_value <= val <= narrow_t.max_value:
                return [self.splat(Const(val, narrow_t), narrow_t)] * self.k(
                    narrow_t
                )
        return None

    def _try_widen_mult(self, mul: BinOp) -> list[Value] | None:
        """mul(convert(x), convert(y)) at 2T from T -> widen_mult_hi/lo."""
        if mul.op != "mul" or mul.type.is_float:
            return None
        t = mul.type
        if not isinstance(t, ScalarType) or t.size < 2:
            return None
        try:
            narrow_t = narrowed(t)
        except KeyError:
            return None
        if narrow_t.size < self.min_elem.size:
            # The narrow vectors would cover more elements per register
            # than the loop consumes per iteration (min_elem sets the
            # granularity): the hi/lo pair would not line up with k(T).
            return None
        lhs = self._narrow_operand(mul.lhs, narrow_t)
        if lhs is None:
            return None
        rhs = self._narrow_operand(mul.rhs, narrow_t)
        if rhs is None:
            return None
        out: list[Value] = []
        for a, b in zip(lhs, rhs):
            out.append(self.b.emit(self._tag(WidenMult("lo", a, b, name="vwm"))))
            out.append(self.b.emit(self._tag(WidenMult("hi", a, b, name="vwm"))))
        return out

    # -- reductions ----------------------------------------------------------

    def try_dot_product(self, addend: Value, acc_packs: list[Value]) -> list[Value] | None:
        """acc += convert-free widening multiply -> dot_product update.

        ``addend`` is the non-accumulator side of a plus-reduction update;
        when it is a widening multiply, emit one dot_product per narrow
        pack, halving the accumulator register pressure (pmaddwd).
        ``acc_packs`` must have been set up in dot form (k(narrow) packs of
        the widened type); returns the updated packs.
        """
        if not isinstance(addend, BinOp) or addend.op != "mul":
            return None
        t = addend.type
        if t.is_float or not isinstance(t, ScalarType) or t.size < 2:
            return None
        try:
            narrow_t = narrowed(t)
        except KeyError:
            return None
        lhs = self._narrow_operand(addend.lhs, narrow_t)
        rhs = self._narrow_operand(addend.rhs, narrow_t)
        if lhs is None or rhs is None:
            return None
        if len(lhs) != len(acc_packs):
            return None
        return [
            self.b.emit(self._tag(DotProduct(a, b, acc, name="vdot")))
            for a, b, acc in zip(lhs, rhs, acc_packs)
        ]
