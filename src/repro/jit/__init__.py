"""The online compilation stage: materialization of the split layer and the
two JIT personalities (Mono-like, gcc4cli-like)."""

from .compilers import CompiledKernel, MonoJIT, NativeBackend, OptimizingJIT
from .materialize import (
    DegradationEvent,
    MaterializeError,
    MaterializeOptions,
    materialize,
)
from .specialize import SpecializationError, specialize_scalars

__all__ = [
    "CompiledKernel",
    "MonoJIT",
    "OptimizingJIT",
    "NativeBackend",
    "materialize",
    "MaterializeOptions",
    "MaterializeError",
    "DegradationEvent",
    "specialize_scalars",
    "SpecializationError",
]
