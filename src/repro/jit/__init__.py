"""The online compilation stage: materialization of the split layer and the
two JIT personalities (Mono-like, gcc4cli-like)."""

from .compilers import CompiledKernel, MonoJIT, NativeBackend, OptimizingJIT
from .materialize import MaterializeError, MaterializeOptions, materialize
from .specialize import SpecializationError, specialize_scalars

__all__ = [
    "CompiledKernel",
    "MonoJIT",
    "OptimizingJIT",
    "NativeBackend",
    "materialize",
    "MaterializeOptions",
    "MaterializeError",
    "specialize_scalars",
    "SpecializationError",
]
