"""Runtime specialization — the paper's §VII future work, implemented.

"In the future, we wish to extend our framework to take full advantage of
online compilation, leveraging dynamic context and workload information for
improved specialization."

The online compiler already controls allocation (the ``bases_aligned``
fold); this module adds *value* specialization: once the runtime has
observed the actual scalar arguments of a hot kernel (the trip count above
all), it clones the bytecode with those parameters bound to constants and
recompiles.  Constant folding then precomputes the whole split-layer
prologue — peel counts, main-loop bounds, version-guard arithmetic — and
the zero-trip peel/epilogue loops disappear at compile time instead of
costing a test per invocation.
"""

from __future__ import annotations

from ..errors import ReproError
from ..ir import Argument, Const, Function, Value, clone_block, walk
from ..ir.types import ScalarType

__all__ = ["specialize_scalars", "SpecializationError"]


class SpecializationError(ReproError):
    """Raised for unknown parameter names or non-scalar bindings."""


def specialize_scalars(fn: Function, bindings: dict[str, float]) -> Function:
    """Clone ``fn`` with the named scalar parameters bound to constants.

    The bound parameters are removed from the signature; callers invoke the
    specialized kernel without them.  Works on scalar or vectorized
    bytecode (before or after decode) — specialization happens at the IR
    level, so the ordinary JIT pipeline performs all the folding.

    Args:
        fn: the kernel to specialize.
        bindings: parameter name -> concrete value.

    Returns:
        A new Function named ``<name>__spec`` with the reduced signature.
    """
    by_name = {p.name: p for p in fn.scalar_params}
    vmap: dict[Value, Value] = {}
    remaining = []
    for name, value in bindings.items():
        if name not in by_name:
            raise SpecializationError(
                f"{fn.name} has no scalar parameter {name!r} "
                f"(has: {sorted(by_name)})"
            )
        param = by_name[name]
        assert isinstance(param.type, ScalarType)
        vmap[param] = Const(value, param.type)
    for p in fn.scalar_params:
        if p.name not in bindings:
            remaining.append(p)

    out = Function(
        f"{fn.name}__spec", remaining, fn.array_params, fn.return_type
    )
    out.form = fn.form
    out.annotations = dict(fn.annotations)
    out.annotations["specialized"] = dict(bindings)
    out.body = clone_block(fn.body, vmap)
    # Array extents referencing a bound parameter stay symbolic in the
    # ArrayRef (shapes are metadata, shared with the original); the loop
    # bounds that matter for codegen were rewritten above.
    for instr in walk(out.body):
        instr.replace_uses(vmap)
    return out
