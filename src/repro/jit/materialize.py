"""Materialization: the target-specific half of the split (§III-C).

This is the core of the online compiler.  It walks the decoded vectorized
bytecode once (linear time, as the split design demands — no loop analysis
happens here) and:

* materializes ``get_VF`` / ``get_align_limit`` to constants for the target
  (1 when the loop group scalarizes);
* selects ``loop_bound`` operands so a scalarized group executes exactly
  one loop (§III-B.c);
* resolves ``version_guard`` conditions — folding them to constants where
  the policy allows (the optimizing JIT always; the Mono-like JIT only at
  top level, reproducing the MMM-on-Mono behaviour of §V-A) or emitting
  runtime checks (array-overlap tests for ``no_alias``);
* lowers every ``realign_load`` according to the four translation schemes
  of §III-C: aligned load, implicit (misaligned) load, explicit vperm
  realignment, or — for scalarized groups — a plain load in a loop that
  never runs;
* drops the realignment-chain idioms (``get_rt``, ``align_load``) that the
  chosen scheme ignores, exactly as the paper describes ("no code is
  generated for idioms get_rt and align_load");
* rewrites the remaining Table 1 idioms onto machine-dialect operations,
  routing the target's missing ones through library calls (the immature
  NEON dissolve/dct path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from ..errors import FaultInjected, ReproError
from ..ir import (
    ALoad,
    AlignLoad,
    BinOp,
    Block,
    Cmp,
    Const,
    CvtIntFp,
    DotProduct,
    Extract,
    ForLoop,
    Function,
    GetAlignLimit,
    GetRT,
    GetVF,
    IdiomInstr,
    If,
    InitAffine,
    InitPattern,
    InitReduc,
    InitUniform,
    Instr,
    Interleave,
    LoopBound,
    Pack,
    RealignLoad,
    Reduce,
    Select,
    UnOp,
    Unpack,
    Value,
    VersionGuard,
    VStore,
    WidenMult,
    walk,
)
from ..ir.types import BOOL, ScalarType, VectorType
from ..machine import ops as mops
from ..targets.base import Target

__all__ = [
    "materialize",
    "MaterializeOptions",
    "MaterializeError",
    "DegradationEvent",
]


class MaterializeError(ReproError):
    """Raised when bytecode cannot be lowered for the target (compiler bug
    — the mode analysis should have chosen scalarization)."""


class InjectedMaterializeFault(MaterializeError, FaultInjected):
    """A :class:`~repro.faults.MaterializeFault` firing (never raised by
    the production path)."""


@dataclass(frozen=True)
class DegradationEvent:
    """One vector loop group degrading to its scalar version on a SIMD
    target — the fail-soft path taken instead of a hard compile error.

    Attributes:
        function: function being materialized.
        target: online compilation target.
        group: ``vect_group`` id of the degraded loop trio (None for a
            whole-function forced-scalar retry).
        cause: machine-readable reason — one of ``"unsupported-elem"``,
            ``"unsupported-store"``, ``"pattern-mismatch"``,
            ``"fault-injected"``, ``"forced-scalar"``.
        detail: human-readable specifics.
    """

    function: str
    target: str
    group: int | None
    cause: str
    detail: str = ""


@dataclass
class MaterializeOptions:
    """Online-compiler policy.

    Attributes:
        fold_guards_top_only: Mono-like constant handling — version guards
            nested inside loops are *not* folded (they execute at run time
            even when statically known), reproducing "Mono is unable to
            fold constants across a nested loop" (§V-A).
        runtime_aligns: the JIT controls allocation and guarantees VS-
            aligned array bases, so ``bases_aligned`` folds to true.
    """

    fold_guards_top_only: bool = False
    runtime_aligns: bool = True
    #: Experiment-only (DESIGN.md loop_bound ablation): when False, a
    #: scalarized group keeps the three-loop structure and executes the
    #: vector loop with VF=1 instead of routing everything through the
    #: scalar peel loop — the naive scalarization §III-B.c warns about.
    #: Only sound for kernels without widening idioms.
    scalar_via_loop_bound: bool = True
    #: Fail-soft retry knob: scalarize *every* vector loop group, used by
    #: the compile-level retry after a whole-function MaterializeError.
    force_scalar: bool = False


@dataclass
class _GroupMode:
    mode: str  # "vector" | "scalar"
    library: set  # idiom mnemonics routed through call_lib
    cause: str | None = None  # why a SIMD target degraded to scalar
    detail: str = ""


class _Materializer:
    def __init__(self, fn: Function, target: Target, options: MaterializeOptions):
        self.fn = fn
        self.target = target
        self.options = options
        self.stats = {"guards_folded": 0, "guards_runtime": 0,
                      "chains_kept": 0, "chains_dropped": 0,
                      "loops_scalarized": 0, "loops_vectorized": 0}
        #: structured fail-soft records (one per degraded loop group).
        self.events: list[DegradationEvent] = []
        #: values that replaced bases_aligned guards, so the If that tests
        #: them still establishes the aligned context after substitution.
        self._align_values: set[int] = set()

    # -- group mode analysis --------------------------------------------------

    def _loop_mode(self, main: ForLoop) -> _GroupMode:
        t = self.target
        if not t.has_simd:
            return _GroupMode("scalar", set())
        if self.options.force_scalar:
            return _GroupMode("scalar", set(), "forced-scalar",
                              "compile-level scalar retry")
        library: set[str] = set()
        valign = main.annotations.get("valign", {})
        aligned_ctx = self._aligned_ctx_flag
        for instr in walk(main.body):
            if isinstance(instr, IdiomInstr) and faults.lowering_fails(
                instr.mnemonic, t.name
            ):
                return _GroupMode(
                    "scalar", set(), "fault-injected",
                    f"injected lowering failure for {instr.mnemonic}",
                )
            vt = instr.type
            elems = []
            if isinstance(vt, VectorType):
                elems.append(vt.elem)
            for op in instr.operands:
                if isinstance(op.type, VectorType):
                    elems.append(op.type.elem)
            for elem in elems:
                if elem == BOOL:
                    continue
                if not t.supports_elem(elem):
                    return _GroupMode(
                        "scalar", set(), "unsupported-elem",
                        f"{t.name} has no {elem.name} vectors",
                    )
            if isinstance(instr, WidenMult) and "widen_mult" in t.library_idioms:
                library.add("widen_mult")
            if isinstance(instr, CvtIntFp) and "cvt_intfp" in t.library_idioms:
                library.add("cvt_intfp")
            if isinstance(instr, DotProduct) and "dot_product" in t.library_idioms:
                library.add("dot_product")
            if isinstance(instr, VStore):
                if not self._store_aligned(instr, valign, aligned_ctx) and (
                    not t.supports_misaligned_store
                ):
                    return _GroupMode(
                        "scalar", set(), "unsupported-store",
                        f"misaligned vector store @{instr.array.name} "
                        f"unsupported on {t.name}",
                    )
            if isinstance(instr, InitPattern):
                g = len(instr.pattern)
                vf = t.vf(instr.type.elem)
                if vf % g != 0:
                    return _GroupMode(
                        "scalar", set(), "pattern-mismatch",
                        f"pattern width {g} does not divide VF {vf}",
                    )
        return _GroupMode("vector", library)

    def _peel_count(self, valign: dict) -> int | None:
        """The concrete peel iteration count, or None when unknowable."""
        if not valign.get("has_peel"):
            return 0
        lc = valign.get("lower_const")
        if lc is None:
            return None
        es = valign["peel_elem_size"]
        vf_store = self.target.vector_size // es if self.target.has_simd else 1
        if vf_store <= 0:
            return 0
        mis_elems = valign["peel_mis"] // es
        return (vf_store - (mis_elems % vf_store)) % vf_store

    def _store_aligned(self, vs: VStore, valign: dict, aligned_ctx: bool) -> bool:
        if not aligned_ctx or not self.target.has_simd:
            return False
        vsz = self.target.vector_size
        if getattr(vs, "aligned_by_peel", False) and valign.get("has_peel"):
            return True
        if vs.mod == 0 or vs.mod % vsz != 0:
            return False
        peel = self._peel_count(valign)
        if peel is None:
            return False
        return (vs.mis + peel * vs.step_bytes) % vsz == 0

    def _load_aligned(self, rl: RealignLoad, valign: dict, aligned_ctx: bool) -> bool:
        if not aligned_ctx or not self.target.has_simd:
            return False
        vsz = self.target.vector_size
        if rl.mod == 0 or rl.mod % vsz != 0:
            return False
        peel = self._peel_count(valign)
        if peel is None:
            return False
        return (rl.mis + peel * rl.step_bytes) % vsz == 0

    # -- driver ---------------------------------------------------------------

    def run(self) -> Function:
        if not self.options.force_scalar and faults.materialize_fails(
            self.target.name
        ):
            raise InjectedMaterializeFault(
                f"injected materialization failure for {self.fn.name} "
                f"on {self.target.name}"
            )
        self._aligned_ctx_flag = self.options.runtime_aligns
        self._rewrite_block(self.fn.body, {}, depth=0,
                            aligned_ctx=self.options.runtime_aligns,
                            modes={}, valign={})
        return self.fn

    def _concrete(self, vt: VectorType, mode: str) -> VectorType:
        if not isinstance(vt, VectorType) or vt.lanes is not None:
            return vt
        lanes = self.target.vf(vt.elem) if mode == "vector" else 1
        return VectorType(vt.elem, max(lanes, 1))

    def _mode_of(self, instr, modes: dict) -> str:
        gid = getattr(instr, "group", None)
        gm = modes.get(gid)
        if gm is None:
            return "vector" if self.target.has_simd else "scalar"
        return gm.mode

    def _vf_for(self, elem: ScalarType, mode: str) -> int:
        if mode != "vector":
            return 1
        return max(1, self.target.vf(elem))

    def _rewrite_block(
        self,
        block: Block,
        subst: dict[Value, Value],
        depth: int,
        aligned_ctx: bool,
        modes: dict,
        valign: dict,
    ) -> None:
        # First, compute the mode of every trio anchored in this block.
        local_modes = dict(modes)
        for instr in block.instrs:
            if isinstance(instr, ForLoop) and instr.kind == "vector":
                gid = instr.annotations.get("vect_group")
                if gid is not None:
                    gm = self._loop_mode(instr)
                    local_modes[gid] = gm
                    if gm.mode == "vector":
                        self.stats["loops_vectorized"] += 1
                    else:
                        self.stats["loops_scalarized"] += 1
                        if gm.cause is not None:
                            ev = DegradationEvent(
                                function=self.fn.name,
                                target=self.target.name,
                                group=gid,
                                cause=gm.cause,
                                detail=gm.detail,
                            )
                            # A group's loop trio may appear in several
                            # versioned branches; report it once.
                            if ev not in self.events:
                                self.events.append(ev)

        new_instrs: list[Instr] = []
        for instr in block.instrs:
            instr.replace_uses(subst)
            emitted = self._rewrite_instr(
                instr, new_instrs, subst, depth, aligned_ctx, local_modes, valign
            )
            if emitted is not None:
                new_instrs.extend(emitted)
        block.instrs = new_instrs

    def _rewrite_instr(
        self, instr, out, subst, depth, aligned_ctx, modes, valign
    ) -> list[Instr] | None:
        """Return the replacement instruction list ([] drops the instr and
        a subst entry must have been recorded)."""
        t = self.target
        mode = self._mode_of(instr, modes)

        if isinstance(instr, ForLoop):
            gid = instr.annotations.get("vect_group")
            gm = modes.get(gid)
            loop_mode = gm.mode if gm is not None else mode
            inner_valign = valign
            if instr.kind == "vector":
                inner_valign = instr.annotations.get("valign", {})
            # Concretize carried vector values and results.
            for arg in instr.body.args:
                if isinstance(arg.type, VectorType):
                    arg.type = self._concrete(arg.type, loop_mode)
            for res in instr.results:
                if isinstance(res.type, VectorType):
                    res.type = self._concrete(res.type, loop_mode)
            self._rewrite_block(
                instr.body, subst, depth + 1, aligned_ctx, modes, inner_valign
            )
            return [instr]

        if isinstance(instr, If):
            cond = instr.cond
            is_align_guard = (
                isinstance(cond, VersionGuard) and cond.kind == "bases_aligned"
            ) or cond.id in self._align_values
            then_aligned = (
                self.options.runtime_aligns if is_align_guard else aligned_ctx
            )
            else_aligned = False if is_align_guard else aligned_ctx
            self._rewrite_block(
                instr.then_block, subst, depth, then_aligned, modes, valign
            )
            self._rewrite_block(
                instr.else_block, subst, depth, else_aligned, modes, valign
            )
            for res in instr.results:
                if isinstance(res.type, VectorType):
                    res.type = self._concrete(res.type, mode)
            return [instr]

        if isinstance(instr, VersionGuard):
            return self._rewrite_guard(instr, subst, depth, modes)

        if isinstance(instr, GetVF):
            subst[instr] = Const(self._vf_for(instr.elem, mode), instr.type)
            return []
        if isinstance(instr, GetAlignLimit):
            subst[instr] = Const(self._vf_for(instr.elem, mode), instr.type)
            return []
        if isinstance(instr, LoopBound):
            use_vect = mode == "vector" or not self.options.scalar_via_loop_bound
            subst[instr] = instr.vect if use_vect else instr.scalar
            return []

        if isinstance(instr, InitUniform):
            rep = mops.MVSplat(self._concrete(instr.type, mode), instr.val)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, InitAffine):
            rep = mops.MVAffine(
                self._concrete(instr.type, mode), instr.val, instr.inc
            )
            subst[instr] = rep
            return [rep]
        if isinstance(instr, InitReduc):
            vt = self._concrete(instr.type, mode)
            base = mops.MVConst(vt, (instr.default,))
            ins = mops.MVInsert0(base, instr.val)
            subst[instr] = ins
            return [base, ins]
        if isinstance(instr, InitPattern):
            rep = mops.MVConst(self._concrete(instr.type, mode), instr.pattern)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, Reduce):
            rep = mops.MVReduce(instr.kind, instr.vec)
            rep.type = instr.type
            subst[instr] = rep
            return [rep]
        if isinstance(instr, DotProduct):
            gm = modes.get(getattr(instr, "group", None))
            if gm and "dot_product" in gm.library:
                rep = mops.MLibCall(
                    self._concrete(instr.type, mode), "vdot",
                    list(instr.operands), {},
                )
            else:
                rep = mops.MVDot(instr.v1, instr.v2, instr.acc)
                rep.type = self._concrete(instr.type, mode)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, WidenMult):
            vt = self._concrete(instr.type, mode)
            gm = modes.get(getattr(instr, "group", None))
            if gm and "widen_mult" in gm.library:
                rep = mops.MLibCall(
                    vt, "vwidenmul", list(instr.operands), {"half": instr.half}
                )
            else:
                rep = mops.MVWidenMult(vt, instr.half, *instr.operands)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, Pack):
            rep = mops.MVPack(self._concrete(instr.type, mode), *instr.operands)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, Unpack):
            rep = mops.MVUnpack(
                self._concrete(instr.type, mode), instr.half, instr.operands[0]
            )
            subst[instr] = rep
            return [rep]
        if isinstance(instr, CvtIntFp):
            vt = self._concrete(instr.type, mode)
            gm = modes.get(getattr(instr, "group", None))
            if gm and "cvt_intfp" in gm.library:
                rep = mops.MLibCall(vt, "vcvt", list(instr.operands), {"to": vt.elem})
            else:
                rep = mops.MVCvt(vt, instr.operands[0])
            subst[instr] = rep
            return [rep]
        if isinstance(instr, Extract):
            rep = mops.MVExtract(instr.stride, instr.offset, list(instr.operands))
            rep.type = self._concrete(instr.type, mode)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, Interleave):
            rep = mops.MVInterleave(instr.half, *instr.operands)
            rep.type = self._concrete(instr.type, mode)
            subst[instr] = rep
            return [rep]

        if isinstance(instr, GetRT):
            # Kept only when some realign_load lowers to vperm; we decide
            # lazily: emit MLvsr now and let DCE drop it if unused.
            rep = mops.MLvsr(instr.array, instr.index)
            subst[instr] = rep
            return [rep]
        if isinstance(instr, (ALoad, AlignLoad)):
            vt = self._concrete(instr.type, mode)
            load_mode = "a" if isinstance(instr, ALoad) else "fa"
            rep = mops.MVLoad(vt, instr.array, instr.index, load_mode)
            subst[instr] = rep
            return [rep]

        if isinstance(instr, RealignLoad):
            return self._rewrite_realign(instr, subst, mode, aligned_ctx, valign)

        if isinstance(instr, VStore):
            vt = self._concrete(instr.value.type, mode)
            if mode != "vector":
                store_mode = "u"
            elif self._store_aligned(instr, valign, aligned_ctx):
                store_mode = "a"
            elif t.supports_misaligned_store:
                store_mode = "u"
            else:
                raise MaterializeError(
                    f"misaligned vector store on {t.name} "
                    f"(@{instr.array.name}, mis={instr.mis}, mod={instr.mod})"
                )
            rep = mops.MVStore(instr.array, instr.index, instr.value, store_mode)
            subst[instr] = rep
            return [rep]

        if isinstance(instr, IdiomInstr):
            raise MaterializeError(f"unlowered idiom {instr.mnemonic}")

        # Plain generic instruction with a symbolic vector type: inherit the
        # concrete lane count from its (already rewritten) vector operands.
        if isinstance(instr.type, VectorType) and instr.type.lanes is None:
            lanes = None
            for op in instr.operands:
                if isinstance(op.type, VectorType) and op.type.lanes is not None:
                    if op.type.elem == instr.type.elem:
                        lanes = op.type.lanes
                        break
                    lanes = (
                        op.type.lanes * op.type.elem.size
                    ) // instr.type.elem.size
            if lanes is not None:
                instr.type = VectorType(instr.type.elem, max(lanes, 1))
            else:
                instr.type = self._concrete(instr.type, mode)
        return [instr]

    def _rewrite_realign(
        self, rl: RealignLoad, subst, mode, aligned_ctx, valign
    ) -> list[Instr]:
        t = self.target
        vt = self._concrete(rl.type, mode)
        if mode != "vector":
            rep = mops.MVLoad(vt, rl.array, rl.index, "u")
            subst[rl] = rep
            return [rep]
        if self._load_aligned(rl, valign, aligned_ctx):
            rep = mops.MVLoad(vt, rl.array, rl.index, "a")
            subst[rl] = rep
            return [rep]
        if t.supports_misaligned_load:
            rep = mops.MVLoad(vt, rl.array, rl.index, "u")
            subst[rl] = rep
            return [rep]
        if t.supports_explicit_realign:
            self.stats["chains_kept"] += 1
            if rl.has_chain:
                rep = mops.MVPerm(rl.v1, rl.v2, rl.rt)
                rep.type = vt
                subst[rl] = rep
                return [rep]
            # Chainless: inline lvsr + two floor-aligned loads + vperm.
            rt = mops.MLvsr(rl.array, rl.index)
            v1 = mops.MVLoad(vt, rl.array, rl.index, "fa")
            vf = max(1, t.vf(vt.elem))
            from ..ir.types import I32 as _I32

            offset = BinOp("add", rl.index, Const(vf, _I32))
            v2 = mops.MVLoad(vt, rl.array, offset, "fa")
            rep = mops.MVPerm(v1, v2, rt)
            rep.type = vt
            subst[rl] = rep
            return [rt, v1, offset, v2, rep]
        raise MaterializeError(
            f"no way to load misaligned vectors on {t.name}"
        )

    def _rewrite_guard(self, guard: VersionGuard, subst, depth, modes) -> list[Instr]:
        t = self.target
        value: bool | None = None
        runtime: list[Instr] = []
        if guard.kind == "bases_aligned":
            if self.options.runtime_aligns:
                value = True
            else:
                cond: Value | None = None
                for arr in guard.operands:
                    chk = mops.MArrAligned(arr, max(t.vector_size, 1))
                    runtime.append(chk)
                    if cond is None:
                        cond = chk
                    else:
                        comb = BinOp("and", cond, chk)
                        runtime.append(comb)
                        cond = comb
                rep_val = cond if cond is not None else Const(1, BOOL)
                subst[guard] = rep_val
                self._align_values.add(rep_val.id)
                self.stats["guards_runtime"] += 1
                return runtime
        elif guard.kind == "no_alias":
            a1, a2 = guard.operands
            ov = mops.MArrOverlap(a1, a2)
            inv = Cmp("eq", ov, Const(0, BOOL))
            runtime = [ov, inv]
            subst[guard] = inv
            self.stats["guards_runtime"] += 1
            return runtime
        elif guard.kind == "vf_le":
            from ..ir.types import scalar_type_from_name

            elem = scalar_type_from_name(guard.params.get("elem", "i32"))
            vf = t.vf(elem) if t.has_simd else 1
            value = vf <= guard.params["bound"]
        elif guard.kind == "slp_group":
            from ..ir.types import scalar_type_from_name

            elem = scalar_type_from_name(guard.params["elem"])
            g = guard.params["group"]
            vf = t.vf(elem) if t.has_simd else 1
            value = t.has_simd and vf % g == 0 and vf >= g
        elif guard.kind == "prefer_outer" or guard.kind == "has_idiom":
            from ..ir.types import scalar_type_from_name

            elems = [
                scalar_type_from_name(e) for e in guard.params.get("elems", [])
            ]
            idioms = guard.params.get("idioms", [])
            value = t.has_simd and all(t.supports_elem(e) for e in elems) and all(
                i not in t.library_idioms or True for i in idioms
            )
        assert value is not None
        self.stats["guards_folded"] += 1
        const = Const(1 if value else 0, BOOL)
        if self.options.fold_guards_top_only and depth > 0:
            # Mono: keep the (constant) test as a runtime branch condition.
            rep = BinOp("or", const, const, name="guard_rt")
            subst[guard] = rep
            if guard.kind == "bases_aligned":
                self._align_values.add(rep.id)
            self.stats["guards_runtime"] += 1
            return [rep]
        subst[guard] = const
        if guard.kind == "bases_aligned":
            self._align_values.add(const.id)
        return []


def materialize(
    fn: Function, target: Target, options: MaterializeOptions | None = None
) -> tuple[Function, dict]:
    """Materialize ``fn`` in place for ``target``; returns (fn, stats).

    ``stats["degradation_events"]`` carries the structured
    :class:`DegradationEvent` list (empty on a clean vector compile).
    """
    m = _Materializer(fn, target, options or MaterializeOptions())
    out = m.run()
    stats = dict(m.stats)
    stats["degradation_events"] = list(m.events)
    return out, stats
