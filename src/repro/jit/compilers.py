"""The online compilers: Mono-like lightweight JIT and gcc4cli-like
optimizing compiler, plus the monolithic native compiler (Figure 4).

All three share the same backend skeleton — materialize Table 1 idioms,
flatten to machine IR, allocate registers — and differ exactly where the
paper says the real systems differed:

================== ========================== ==========================
stage              MonoJIT                    OptimizingJIT / native
================== ========================== ==========================
guard folding      top level only             everywhere
scalar opts        dead-code removal only     fold/simplify/LICM/DCE
addressing         explicit shifts/adds       scaled addressing if the
                                              target has it
constants          rematerialized per use     cached in registers
register allocator local (block-crossing      linear scan (spill only
                   values spilled)            under real pressure)
scalar x86 floats  x87 (extra cost)           SSE scalar
================== ========================== ==========================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from .._compat import warn_once
from ..ir import Function, clone_function
from ..machine import (
    FlattenOptions,
    MFunction,
    allocate_linear_scan,
    allocate_local,
    flatten,
)
from ..passes import eliminate_dead_code, optimize
from ..targets import get_target
from ..targets.base import Target
from .materialize import (
    DegradationEvent,
    MaterializeError,
    MaterializeOptions,
    materialize,
)

__all__ = ["CompiledKernel", "MonoJIT", "OptimizingJIT", "NativeBackend"]


@dataclass
class CompiledKernel:
    """The output of one online (or native backend) compilation."""

    mfunc: MFunction
    target: Target
    compiler: str
    compile_seconds: float
    stats: dict = field(default_factory=dict)
    ir: Function | None = None
    #: True when any vector loop group fell back to its scalar version (or
    #: the whole function re-materialized force-scalar after a
    #: MaterializeError) — the run is still correct, just slower.
    degraded: bool = False
    #: the structured :class:`~repro.jit.materialize.DegradationEvent`\\ s
    #: explaining *why* (empty on a clean vector compile).
    events: list = field(default_factory=list)
    #: lazily-populated per-engine translations, keyed by
    #: ``(engine, count_ops)``; see :meth:`translated`.
    _threaded: dict = field(default_factory=dict, repr=False, compare=False)

    def translated(self, engine: str, count_ops: bool = False):
        """This kernel translated for ``engine`` (registry lookup).

        Translation happens once per ``(engine, count_ops)`` and is
        cached on the compiled kernel, so repeated executions (sweeps,
        repeated benchmark runs) pay translation exactly once; the
        wall-clock cost is recorded in the ``vm.translate_seconds``
        metric.  Raises ``ValueError`` for engines without a
        ``translate`` callable (e.g. the reference interpreter).
        """
        key = (engine, count_ops)
        code = self._threaded.get(key)
        if code is None:
            from ..machine.registry import get_engine

            eng = get_engine(engine)
            if eng.translate is None:
                raise ValueError(
                    f"engine {engine!r} has no translate step"
                )
            t0 = time.perf_counter()
            code = eng.translate(self.mfunc, self.target, count_ops)
            obs.observe("vm.translate_seconds", time.perf_counter() - t0)
            self._threaded[key] = code
        return code

    def threaded(self, count_ops: bool = False):
        """The machine code pre-decoded for the threaded engine
        (shorthand for ``translated("threaded", count_ops)``)."""
        return self.translated("threaded", count_ops)


class _BaseCompiler:
    name = "base"
    fold_guards_top_only = False
    x87_scalar_fp = False
    rematerialize_consts = False
    opt_level = 2
    local_regalloc = False

    def __init__(self, *, runtime_aligns: bool = True,
                 scalar_via_loop_bound: bool = True) -> None:
        self.runtime_aligns = runtime_aligns
        self.scalar_via_loop_bound = scalar_via_loop_bound

    def _options(self, force_scalar: bool = False) -> MaterializeOptions:
        return MaterializeOptions(
            fold_guards_top_only=self.fold_guards_top_only,
            runtime_aligns=self.runtime_aligns,
            scalar_via_loop_bound=self.scalar_via_loop_bound,
            force_scalar=force_scalar,
        )

    def compile(
        self, fn: Function, target: Target | str, *args,
        force_scalar: bool = False,
    ) -> CompiledKernel:
        """Compile IR (scalar or vectorized bytecode) to machine code.

        ``target`` accepts a :class:`Target` or its canonical name (the
        one-coercion-everywhere API convention); ``force_scalar`` is
        keyword-only (passing it positionally is deprecated and warns
        once).

        Fail-soft: a whole-function :class:`MaterializeError` on the first
        (vector) attempt triggers one retry with every loop group forced
        scalar — a slower but correct compilation — and the kernel is
        marked ``degraded`` with the cause recorded in ``events``.

        ``force_scalar=True`` skips the vector attempt entirely and
        materializes every loop group scalar from the start — the
        degradation cascade of :class:`repro.service.KernelService` uses
        this as its always-lowerable fallback compilation.
        """
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"compile() takes at most 3 positional arguments "
                    f"({2 + len(args)} given)"
                )
            warn_once(
                "compile(fn, target, force_scalar) with positional "
                "force_scalar",
                "the keyword form compile(fn, target, force_scalar=...)",
            )
            force_scalar = bool(args[0])
        if isinstance(target, str):
            target = get_target(target)
        start = time.perf_counter()
        try:
            work = clone_function(fn)
            work, mstats = materialize(
                work, target, self._options(force_scalar=force_scalar)
            )
        except MaterializeError as exc:
            work = clone_function(fn)
            work, mstats = materialize(
                work, target, self._options(force_scalar=True)
            )
            mstats.setdefault("degradation_events", []).insert(
                0,
                DegradationEvent(
                    function=fn.name,
                    target=target.name,
                    group=None,
                    cause="forced-scalar",
                    detail=f"materialization retry after: {exc}",
                ),
            )
        if self.opt_level >= 2:
            optimize(work, level=2)
        else:
            # Even the lightweight JIT sweeps dead realignment chains
            # ("The JIT compiler can remove some of this code by
            # recognizing dead code", §III-C.d).
            eliminate_dead_code(work)
        mfunc = flatten(
            work,
            FlattenOptions(
                scaled_addressing=(
                    target.has_scaled_addressing and self.opt_level >= 2
                ),
                rematerialize_consts=self.rematerialize_consts,
            ),
        )
        if self.local_regalloc:
            alloc = allocate_local(mfunc, target)
        else:
            alloc = allocate_linear_scan(mfunc, target)
        if self.x87_scalar_fp and target.name in ("sse", "avx"):
            mfunc.meta["x87"] = True
        elapsed = time.perf_counter() - start
        stats = dict(mstats)
        events = list(stats.pop("degradation_events", []))
        stats.update(
            {
                "spilled_values": alloc.spilled_values,
                "spill_loads": alloc.spill_loads,
                "spill_stores": alloc.spill_stores,
                "minstrs": len(mfunc.instrs),
                "degraded_groups": len(events),
            }
        )
        # Feed the observability spine (no-ops when obs is disabled).
        obs.count("jit.compiles")
        obs.count("jit.loops_vectorized", stats.get("loops_vectorized", 0))
        obs.count("jit.loops_scalarized", stats.get("loops_scalarized", 0))
        obs.count("jit.degradation_events", len(events))
        if events:
            obs.count("jit.degraded_compiles")
        obs.observe("jit.compile_seconds", elapsed)
        return CompiledKernel(
            mfunc, target, self.name, elapsed, stats, ir=work,
            degraded=bool(events), events=events,
        )


class MonoJIT(_BaseCompiler):
    """The resource-constrained JIT of §IV: 1:1 idiom lowering, poor global
    register allocation, x87 scalar floats on x86, constants and guards not
    folded across loops."""

    name = "mono"
    fold_guards_top_only = True
    x87_scalar_fp = True
    rematerialize_consts = True
    opt_level = 0
    local_regalloc = True


class OptimizingJIT(_BaseCompiler):
    """The gcc4cli-based online compiler: a state-of-the-art backend fed
    with the same vectorized bytecode."""

    name = "gcc4cli"
    opt_level = 2


class NativeBackend(OptimizingJIT):
    """The backend half of the monolithic native compiler (same quality as
    the gcc4cli online stage; the difference is the *offline* config that
    produced its input — concrete VF, no guards)."""

    name = "native"
