"""Loop-nest information.

Collects every loop in a function with its nesting context, constant trip
count where derivable, and the set of induction variables of enclosing
loops — the working context for dependence, alignment, and the vectorizer's
loop selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Block, Const, ForLoop, Function, If, Instr
from .affine import Affine, affine_of

__all__ = ["LoopInfo", "LoopNest", "analyze_loops", "const_trip_count"]


@dataclass
class LoopInfo:
    """One loop plus its context.

    Attributes:
        loop: the ForLoop instruction.
        parent: enclosing LoopInfo, or None for top-level loops.
        depth: 0 for top-level.
        children: directly nested loops.
    """

    loop: ForLoop
    parent: "LoopInfo | None"
    depth: int
    children: list["LoopInfo"] = field(default_factory=list)

    @property
    def iv(self):
        return self.loop.iv

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def enclosing_ivs(self) -> list:
        """IVs of this loop and all enclosing loops, outermost first."""
        ivs = []
        node: LoopInfo | None = self
        while node is not None:
            ivs.append(node.iv)
            node = node.parent
        return list(reversed(ivs))

    def self_and_ancestors(self) -> list["LoopInfo"]:
        out = []
        node: LoopInfo | None = self
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def __repr__(self) -> str:
        return f"LoopInfo({self.loop.iv.name}, depth={self.depth})"


@dataclass
class LoopNest:
    """All loops of a function, with lookup by ForLoop identity."""

    roots: list[LoopInfo]
    by_loop: dict[int, LoopInfo]

    def info(self, loop: ForLoop) -> LoopInfo:
        return self.by_loop[loop.id]

    def all_loops(self) -> list[LoopInfo]:
        out: list[LoopInfo] = []

        def visit(node: LoopInfo) -> None:
            out.append(node)
            for c in node.children:
                visit(c)

        for r in self.roots:
            visit(r)
        return out

    def innermost(self) -> list[LoopInfo]:
        return [li for li in self.all_loops() if li.is_innermost]


def analyze_loops(fn: Function) -> LoopNest:
    """Build the loop nest of ``fn``."""
    roots: list[LoopInfo] = []
    by_loop: dict[int, LoopInfo] = {}

    def visit_block(block: Block, parent: LoopInfo | None) -> None:
        for instr in block.instrs:
            if isinstance(instr, ForLoop):
                info = LoopInfo(instr, parent, 0 if parent is None else parent.depth + 1)
                by_loop[instr.id] = info
                if parent is None:
                    roots.append(info)
                else:
                    parent.children.append(info)
                visit_block(instr.body, info)
            elif isinstance(instr, If):
                visit_block(instr.then_block, parent)
                visit_block(instr.else_block, parent)

    visit_block(fn.body, None)
    return LoopNest(roots, by_loop)


def const_trip_count(loop: ForLoop) -> int | None:
    """The constant trip count of ``loop``, or None if symbolic.

    Assumes the canonical ``for (iv = lower; iv < upper; iv += step)`` form.
    """
    lower = affine_of(loop.lower)
    upper = affine_of(loop.upper)
    if lower is None or upper is None:
        return None
    if not lower.is_constant or not upper.is_constant:
        return None
    if not isinstance(loop.step, Const):
        return None
    step = int(loop.step.value)
    if step <= 0:
        return None
    span = upper.const - lower.const
    if span <= 0:
        return 0
    return (span + step - 1) // step
