"""Memory reference collection and linearization.

Every load/store inside a candidate loop is summarized as a :class:`MemRef`
with a linearized affine subscript (in *elements* relative to the array
base).  The dependence, alignment, and strided-access machinery all operate
on these summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import ArrayRef, ForLoop, Instr, Load, Store, Value, walk
from .affine import Affine, affine_of
from .loopinfo import LoopInfo

__all__ = ["MemRef", "collect_memrefs", "linearize"]


@dataclass
class MemRef:
    """One memory access summarized for analysis.

    Attributes:
        instr: the Load or Store.
        array: accessed array.
        affine: linearized subscript in elements, or None if non-affine.
        is_store: write vs read.
        order: lexical position within the analyzed region (for
            loop-independent dependence direction).
    """

    instr: Instr
    array: ArrayRef
    affine: Affine | None
    is_store: bool
    order: int

    def stride_in(self, iv: Value) -> int | None:
        """Element stride with respect to ``iv``; None if non-affine."""
        if self.affine is None:
            return None
        return self.affine.coeff(iv)

    def __repr__(self) -> str:
        kind = "store" if self.is_store else "load"
        return f"MemRef({kind} @{self.array.name}[{self.affine}])"


def linearize(array: ArrayRef, indices: list[Value]) -> Affine | None:
    """Linearize multi-dimensional indices to an element offset.

    Row-major: ``offset = i0*stride0 + i1*stride1 + ... + i_{r-1}`` where
    ``stride_k`` is the product of the extents of dimensions ``k+1..r-1``.
    Inner extents are guaranteed constant by :class:`ArrayRef`.
    """
    total = Affine.constant(0)
    for k, idx in enumerate(indices):
        aff = affine_of(idx)
        if aff is None:
            return None
        stride = 1
        for extent in array.shape[k + 1 :]:
            stride *= extent
        total = total + aff.scaled(stride)
    return total


def collect_memrefs(loop: ForLoop) -> list[MemRef]:
    """Collect all memory references inside ``loop`` (nested included)."""
    refs: list[MemRef] = []
    for order, instr in enumerate(walk(loop.body)):
        if isinstance(instr, Load):
            refs.append(
                MemRef(instr, instr.array, linearize(instr.array, instr.indices),
                       False, order)
            )
        elif isinstance(instr, Store):
            refs.append(
                MemRef(instr, instr.array, linearize(instr.array, instr.indices),
                       True, order)
            )
    return refs
