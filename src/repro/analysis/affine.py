"""Affine (linear) expression analysis — the scalar-evolution core.

Subscript expressions are abstracted as affine forms ``sum(coeff_k * v_k) +
const`` where each ``v_k`` is either a loop induction variable or an opaque
symbol (a function parameter, a value computed outside the analyzed scope).
Dependence distances, access strides and misalignment all fall out of this
form, exactly as in the classic framework the paper builds on (Allen &
Kennedy; GCC's scalar evolution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import BinOp, BlockArg, Const, Convert, UnOp, Value

__all__ = ["Affine", "affine_of"]


@dataclass
class Affine:
    """``sum(terms[v] * v) + const``; ``terms`` maps Value -> int coeff."""

    terms: dict[Value, int] = field(default_factory=dict)
    const: int = 0

    @staticmethod
    def constant(c: int) -> "Affine":
        return Affine({}, c)

    @staticmethod
    def var(v: Value, coeff: int = 1) -> "Affine":
        return Affine({v: coeff}, 0)

    def __add__(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for v, c in other.terms.items():
            terms[v] = terms.get(v, 0) + c
            if terms[v] == 0:
                del terms[v]
        return Affine(terms, self.const + other.const)

    def __sub__(self, other: "Affine") -> "Affine":
        return self + other.scaled(-1)

    def scaled(self, k: int) -> "Affine":
        if k == 0:
            return Affine.constant(0)
        return Affine({v: c * k for v, c in self.terms.items()}, self.const * k)

    def coeff(self, v: Value) -> int:
        return self.terms.get(v, 0)

    def drop(self, v: Value) -> "Affine":
        """The affine form with ``v``'s term removed."""
        terms = {u: c for u, c in self.terms.items() if u is not v}
        return Affine(terms, self.const)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def terms_excluding(self, ivs: set[Value]) -> dict[Value, int]:
        """Terms over symbols that are not in ``ivs`` (unknowns)."""
        return {v: c for v, c in self.terms.items() if v not in ivs}

    def same_symbols(self, other: "Affine", ivs: set[Value]) -> bool:
        """True if both forms have identical non-IV symbolic parts."""
        return self.terms_excluding(ivs) == other.terms_excluding(ivs)

    def __repr__(self) -> str:
        parts = [f"{c}*{v.short()}" for v, c in self.terms.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


def affine_of(value: Value, depth: int = 0) -> Affine | None:
    """Compute the affine form of an integer ``value``, or None.

    Walks the SSA def chain through add/sub/mul-by-constant/shl-by-constant
    and int-to-int conversions.  Block arguments (induction variables and
    loop-carried values) and opaque definitions become symbols; the caller
    decides which symbols are induction variables of interest.
    """
    if depth > 64:
        return None
    if isinstance(value, Const):
        if isinstance(value.value, float):
            return None
        return Affine.constant(int(value.value))
    if isinstance(value, BlockArg):
        return Affine.var(value)
    if isinstance(value, Convert):
        if value.type.is_float or value.value.type.is_float:
            return None
        inner = affine_of(value.value, depth + 1)
        return inner
    if isinstance(value, BinOp):
        if value.type.is_float:
            return None
        lhs = affine_of(value.lhs, depth + 1)
        rhs = affine_of(value.rhs, depth + 1)
        if value.op == "add" and lhs and rhs:
            return lhs + rhs
        if value.op == "sub" and lhs and rhs:
            return lhs - rhs
        if value.op == "mul" and lhs and rhs:
            if lhs.is_constant:
                return rhs.scaled(lhs.const)
            if rhs.is_constant:
                return lhs.scaled(rhs.const)
            return Affine.var(value)
        if value.op == "shl" and lhs and rhs and rhs.is_constant:
            return lhs.scaled(1 << rhs.const)
        # Non-affine arithmetic: treat the whole value as an opaque symbol.
        return Affine.var(value)
    if isinstance(value, UnOp) and value.op == "neg":
        inner = affine_of(value.value, depth + 1)
        if inner is not None:
            return inner.scaled(-1)
        return Affine.var(value)
    # Arguments, loads, loop results, idiom values: opaque symbols.
    return Affine.var(value)
