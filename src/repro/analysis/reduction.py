"""Reduction-cycle detection (§II.a of the paper).

A loop-carried scalar whose only role is ``acc = acc (+|min|max) e`` per
iteration can be vectorized with the ``init_reduc`` / ``reduc_plus/max/min``
idioms: partial results accumulate in a vector and are reduced to a scalar
after the loop.  Detection "does require loop-level def-use analysis, and as
such is not always suitable for lightweight JIT compilation" — which is
exactly why it runs offline here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import BinOp, BlockArg, ForLoop, Instr, Value, Yield, walk

__all__ = ["Reduction", "find_reductions"]

#: BinOp opcode -> (reduction kind, identity element for int, for float)
_REDUC_OPS = {
    "add": ("plus", 0, 0.0),
    "min": ("min", None, None),  # identity = type max, filled at use site
    "max": ("max", None, None),  # identity = type min
}


@dataclass
class Reduction:
    """A detected reduction on one loop-carried value.

    Attributes:
        carried: the loop body's BlockArg for the accumulator.
        index: position among the loop's carried values.
        kind: "plus" | "min" | "max".
        update_chain: the BinOps forming the cycle, in body order; the last
            one is the value yielded.
    """

    carried: BlockArg
    index: int
    kind: str
    update_chain: list[BinOp]

    @property
    def identity(self) -> float:
        t = self.carried.type
        if self.kind == "plus":
            return 0.0 if t.is_float else 0
        if self.kind == "min":
            return t.max_value
        return t.min_value


def _select_reduction(carried: BlockArg, final: Value) -> tuple[str, list] | None:
    """Match the if-converted conditional min/max:
    ``select(cmp(x, acc), x, acc)`` in any operand/comparison orientation.
    """
    from ..ir import Cmp, Select

    if not isinstance(final, Select) or not isinstance(final.cond, Cmp):
        return None
    cmp = final.cond
    t, f = final.if_true, final.if_false
    if t is carried and f is not carried:
        x, acc_selected_on_true = f, True
    elif f is carried and t is not carried:
        x, acc_selected_on_true = t, False
    else:
        return None
    if _contains(x, carried):
        return None

    def same(a: Value, b: Value) -> bool:
        # Syntactic equivalence: the source `if (a[i] > m) m = a[i];` loads
        # a[i] twice, once for the test and once for the assignment.
        if a is b:
            return True
        from ..ir import Const, Load

        if isinstance(a, Const) and isinstance(b, Const):
            return a.type == b.type and a.value == b.value
        if isinstance(a, Load) and isinstance(b, Load):
            return a.array is b.array and len(a.indices) == len(b.indices) and all(
                same(i, j) for i, j in zip(a.indices, b.indices)
            )
        return False

    # Normalize: which value wins when the comparison holds?
    if same(cmp.lhs, x) and cmp.rhs is carried:
        op = cmp.op
    elif cmp.lhs is carried and same(cmp.rhs, x):
        op = {"gt": "lt", "lt": "gt", "ge": "le", "le": "ge"}.get(cmp.op)
        if op is None:
            return None
    else:
        return None
    # Now the comparison reads "x OP acc".
    winner_is_x = not acc_selected_on_true
    if op in ("gt", "ge"):
        kind = "max" if winner_is_x else "min"
    elif op in ("lt", "le"):
        kind = "min" if winner_is_x else "max"
    else:
        return None
    return kind, [cmp, final]


def _chain_from(carried: BlockArg, final: Value) -> tuple[str, list[BinOp]] | None:
    """Match ``final`` as a same-op chain folding ``carried`` exactly once.

    Accepts ``((acc op e1) op e2) ...`` where ``acc`` appears exactly once,
    at any leaf of the left-leaning chain, and no ``e_k`` uses ``acc``.
    Also accepts the select-based conditional min/max form.
    """
    select_match = _select_reduction(carried, final)
    if select_match is not None:
        return select_match
    if not isinstance(final, BinOp) or final.op not in _REDUC_OPS:
        return None
    op = final.op
    chain: list[BinOp] = []
    node: Value = final
    while isinstance(node, BinOp) and node.op == op:
        chain.append(node)
        lhs_has = _contains(node.lhs, carried)
        rhs_has = _contains(node.rhs, carried)
        if lhs_has and rhs_has:
            return None
        if rhs_has and not isinstance(node.rhs, BlockArg):
            # Keep the chain left-leaning: acc may sit directly on the rhs
            # leaf, but not buried inside a non-trivial rhs subtree.
            return None
        if rhs_has:
            return _REDUC_OPS[op][0], chain
        if isinstance(node.lhs, BlockArg) and node.lhs is carried:
            return _REDUC_OPS[op][0], chain
        if lhs_has:
            node = node.lhs
            continue
        return None
    return None


def _contains(value: Value, target: BlockArg, depth: int = 0) -> bool:
    if value is target:
        return True
    if depth > 64 or not isinstance(value, Instr):
        return False
    return any(_contains(op, target, depth + 1) for op in value.operands)


def find_reductions(loop: ForLoop) -> dict[int, Reduction]:
    """Detect reductions among ``loop``'s carried values.

    Returns a map from carried-value index to :class:`Reduction`.  A carried
    value qualifies only if (a) its yielded update matches a single-op
    reduction chain and (b) the accumulator has no other uses in the body
    (its intermediate values may feed only the chain itself) — uses escaping
    the chain would observe stale per-lane partial sums.
    """
    term = loop.body.terminator
    if not isinstance(term, Yield):
        return {}
    out: dict[int, Reduction] = {}
    body_instrs = list(walk(loop.body))
    for index, carried in enumerate(loop.carried):
        final = term.values[index]
        match = _chain_from(carried, final)
        if match is None:
            continue
        kind, chain = match
        chain_set = {id(c) for c in chain}
        ok = True
        for instr in body_instrs:
            if instr is term:
                continue
            for op in instr.operands:
                if op is carried and id(instr) not in chain_set:
                    ok = False
                # Intermediate chain values may only feed the next chain link.
                if (
                    isinstance(op, BinOp)
                    and id(op) in chain_set
                    and id(instr) not in chain_set
                    and op is not final
                ):
                    ok = False
        # The final chain value must only be yielded (and not otherwise used).
        for instr in body_instrs:
            if instr is term:
                continue
            if final in instr.operands and id(instr) not in chain_set:
                ok = False
        if ok:
            out[index] = Reduction(carried, index, kind, chain)
    return out
