"""Alignment and misalignment analysis (§II.b, §III-B.c of the paper).

For each memory stream accessed by a candidate loop, compute the byte
misalignment of the first access *relative to the array base*, modulo the
paper's large hint modulus (32 bytes).  The hint is valid only when the
misalignment is the same for every vector iteration, i.e. when every term of
the affine subscript other than the vectorized IV contributes a multiple of
the modulus (or is a compile-time constant folded into the offset).

The offline compiler cannot know whether the array *base* is aligned — that
depends on the online environment — so validity is always conditional on a
``bases_aligned`` version guard, exactly as §III-B.c describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Value
from ..ir.idioms import MOD_HINT
from .affine import Affine

__all__ = ["MisalignmentHint", "misalignment_hint"]


@dataclass
class MisalignmentHint:
    """Misalignment of a memory stream.

    Attributes:
        mis: byte misalignment of the first lane relative to the array
            base, modulo ``mod``.
        mod: the hint modulus (MOD_HINT), or 0 when no static hint exists.
    """

    mis: int
    mod: int

    @property
    def known(self) -> bool:
        return self.mod != 0

    def aligned_for(self, vector_size: int) -> bool:
        """True if the stream is VS-aligned given an aligned base."""
        return self.known and self.mis % vector_size == 0


def misalignment_hint(
    affine: Affine | None,
    elem_size: int,
    vector_iv: Value,
    lower: int | None = 0,
) -> MisalignmentHint:
    """Compute the (mis, mod) hint for a stream.

    ``affine`` is the linearized subscript (in elements); ``vector_iv`` the
    IV of the loop being vectorized; ``lower`` the constant lower bound of
    that loop, or None when symbolic.

    Validity conditions:

    * the subscript is affine;
    * the loop lower bound is a known constant (it fixes the first lane);
    * every other term (outer IVs, parameters) steps in multiples of the
      modulus — a term with coefficient c is harmless iff
      ``(c * elem_size) % MOD_HINT == 0``.

    Otherwise ``mod = 0`` (no hint; the online compiler must use runtime
    realignment or misaligned accesses).
    """
    if affine is None or lower is None:
        return MisalignmentHint(0, 0)
    offset_elems = affine.const + affine.coeff(vector_iv) * lower
    for term, coeff in affine.terms.items():
        if term is vector_iv:
            continue
        if (coeff * elem_size) % MOD_HINT != 0:
            return MisalignmentHint(0, 0)
    mis = (offset_elems * elem_size) % MOD_HINT
    return MisalignmentHint(mis, MOD_HINT)
