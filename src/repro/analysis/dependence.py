"""Data-dependence testing.

Implements the classical dependence tests the paper's offline stage relies
on (§II.a): ZIV, strong SIV with distance computation, and a GCD/Banerjee
fallback for multi-index subscripts.  Results are classified with respect to
one *candidate* loop (the loop being considered for vectorization):

* ``independent`` — no dependence relevant to the candidate loop;
* ``loop_independent`` — same-iteration dependence (distance 0), preserved
  by statement-order-preserving vectorization;
* ``carried`` — carried by the candidate loop with the given distance
  (None when the distance is not a compile-time constant);
* ``unknown`` — analysis could not decide; the vectorizer must be
  conservative (the paper: "refrain from vectorizing", §III-B.b).

Dependences carried by loops *enclosing* the candidate are irrelevant —
those iterations still execute sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from ..ir import Value
from .memrefs import MemRef

__all__ = ["DepResult", "Dependence", "test_dependence", "dependences_for_loop"]


@dataclass
class DepResult:
    kind: str  # independent | loop_independent | carried | unknown
    distance: int | None = None

    def __repr__(self) -> str:
        if self.kind == "carried":
            return f"carried(d={self.distance})"
        return self.kind


@dataclass
class Dependence:
    """A dependence edge between two references (at least one store)."""

    src: MemRef
    dst: MemRef
    result: DepResult

    @property
    def kind(self) -> str:
        """flow / anti / output, from the access kinds and lexical order."""
        first, second = (
            (self.src, self.dst)
            if self.src.order <= self.dst.order
            else (self.dst, self.src)
        )
        if first.is_store and second.is_store:
            return "output"
        if first.is_store:
            return "flow"
        return "anti"


def test_dependence(
    ref1: MemRef,
    ref2: MemRef,
    candidate_iv: Value,
    inner_ivs: set[Value],
    trip_counts: dict[Value, int] | None = None,
) -> DepResult:
    """Test ``ref1`` vs ``ref2`` with respect to ``candidate_iv``.

    ``inner_ivs`` are induction variables of loops nested *inside* the
    candidate loop (they vary between the two dynamic accesses).
    ``trip_counts`` optionally bounds inner IVs for a Banerjee-style range
    refinement.
    """
    a1, a2 = ref1.affine, ref2.affine
    if a1 is None or a2 is None:
        return DepResult("unknown")
    varying = set(inner_ivs) | {candidate_iv}
    # Non-varying symbols (parameters, outer IVs) must agree exactly;
    # otherwise we cannot relate the two addresses.
    if not a1.same_symbols(a2, varying):
        return DepResult("unknown")
    # Coefficients on every varying IV must match for the distance framing
    # sum(c_j * d_j) = delta to apply.
    for iv in varying:
        if a1.coeff(iv) != a2.coeff(iv):
            return _gcd_fallback(a1, a2, varying)
    delta = a1.const - a2.const
    c_cand = a1.coeff(candidate_iv)
    inner_coeffs = [a1.coeff(iv) for iv in inner_ivs if a1.coeff(iv) != 0]
    if not inner_coeffs:
        if c_cand == 0:
            # ZIV: addresses identical iff constants match.
            return (
                DepResult("loop_independent") if delta == 0 else DepResult("independent")
            )
        # Strong SIV.
        if delta % c_cand != 0:
            return DepResult("independent")
        d = delta // c_cand
        if d == 0:
            return DepResult("loop_independent")
        if trip_counts is not None and candidate_iv in trip_counts:
            if abs(d) >= trip_counts[candidate_iv]:
                return DepResult("independent")
        return DepResult("carried", abs(d))
    # Inner IVs participate: the equation sum(c_j*d_j) = delta couples the
    # candidate distance with inner-loop distances.
    all_coeffs = inner_coeffs + ([c_cand] if c_cand else [])
    if not all_coeffs:
        return DepResult("loop_independent") if delta == 0 else DepResult("independent")
    g = gcd(*all_coeffs)
    if delta % g != 0:
        return DepResult("independent")
    if trip_counts is not None:
        # Banerjee-style range check: can sum(c_j * d_j) = delta with
        # d_cand != 0?  Bound each inner distance by its trip count.
        lo = hi = 0
        bounded = True
        for iv in inner_ivs:
            c = a1.coeff(iv)
            if c == 0:
                continue
            if iv not in trip_counts:
                bounded = False
                break
            span = trip_counts[iv] - 1
            lo += min(c * span, -c * span)
            hi += max(c * span, -c * span)
        if bounded and c_cand != 0:
            # For a carried dep, |d_cand| >= 1, so delta - c_cand*d_cand must
            # land in [lo, hi] for some d_cand != 0.
            n_cand = trip_counts.get(candidate_iv)
            feasible = False
            max_d = n_cand - 1 if n_cand is not None else 1 << 20
            for sign in (1, -1):
                d = 1
                while d <= max_d:
                    rem = delta - c_cand * sign * d
                    if lo <= rem <= hi:
                        feasible = True
                        break
                    # Monotone in d: bail out once past the window.
                    if (sign * c_cand > 0 and rem < lo) or (
                        sign * c_cand < 0 and rem > hi
                    ):
                        break
                    d += 1
                if feasible:
                    break
            if not feasible:
                # No candidate-carried solution; same-iteration solution?
                return (
                    DepResult("loop_independent")
                    if lo <= delta <= hi
                    else DepResult("independent")
                )
    return DepResult("unknown")


def _gcd_fallback(a1, a2, varying: set[Value]) -> DepResult:
    """Different coefficients on varying IVs: only the GCD test applies."""
    coeffs = []
    for iv in varying:
        c1, c2 = a1.coeff(iv), a2.coeff(iv)
        if c1:
            coeffs.append(c1)
        if c2:
            coeffs.append(c2)
    delta = a1.const - a2.const
    if coeffs and delta % gcd(*coeffs) != 0:
        return DepResult("independent")
    return DepResult("unknown")


def dependences_for_loop(
    refs: list[MemRef],
    candidate_iv: Value,
    inner_ivs: set[Value],
    trip_counts: dict[Value, int] | None = None,
) -> list[Dependence]:
    """All dependence edges among ``refs`` relevant to the candidate loop.

    Pairs on distinct arrays are independent unless *both* arrays are marked
    ``may_alias`` (the C default of possibly-overlapping pointers); such
    pairs yield ``unknown`` and the vectorizer must version with a runtime
    alias check (§III-B.b compares this to "run-time aliasing checks that
    auto-vectorizing compilers already use").
    """
    edges: list[Dependence] = []
    for i, r1 in enumerate(refs):
        for r2 in refs[i:]:
            if not (r1.is_store or r2.is_store):
                continue
            if r1.array is not r2.array:
                if r1.array.may_alias and r2.array.may_alias:
                    edges.append(Dependence(r1, r2, DepResult("unknown")))
                continue
            if r1 is r2:
                continue
            result = test_dependence(r1, r2, candidate_iv, inner_ivs, trip_counts)
            if result.kind != "independent":
                edges.append(Dependence(r1, r2, result))
    return edges
