"""Offline analyses: scalar evolution, loop nests, memory references,
data dependence, reductions, and alignment.

These are the "time-consuming analyses ... carried out by an offline
compiler" (§II) whose results the split layer encodes as hints for the JIT.
"""

from .affine import Affine, affine_of
from .alignment import MisalignmentHint, misalignment_hint
from .dependence import DepResult, Dependence, dependences_for_loop, test_dependence
from .loopinfo import LoopInfo, LoopNest, analyze_loops, const_trip_count
from .memrefs import MemRef, collect_memrefs, linearize
from .reduction import Reduction, find_reductions

__all__ = [
    "Affine",
    "affine_of",
    "MisalignmentHint",
    "misalignment_hint",
    "DepResult",
    "Dependence",
    "dependences_for_loop",
    "test_dependence",
    "LoopInfo",
    "LoopNest",
    "analyze_loops",
    "const_trip_count",
    "MemRef",
    "collect_memrefs",
    "linearize",
    "Reduction",
    "find_reductions",
]
