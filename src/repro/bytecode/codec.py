"""Vapor bytecode: serialization of (scalar or vectorized) IR functions.

This is the repo's stand-in for the CLI bytecode of the paper: a standard,
strongly typed, structure-preserving format that both compilation stages
speak.  The Table 1 idioms are ordinary opcodes in it — "incorporated into
a standard representation (without breaking it)" (§III-A) — so a consumer
that does not know them could still parse the stream.

The format is deliberately compact (varints, interned opcode table) because
the paper's §V-A.c measures bytecode-size growth under vectorization (~5x)
and shows JIT compile time is proportional to it; we reproduce both from
real encoded bytes.
"""

from __future__ import annotations

import struct
import zlib

from .. import faults
from ..ir import (
    ALoad,
    AlignLoad,
    Argument,
    ArrayRef,
    BinOp,
    Block,
    BlockArg,
    Cmp,
    Const,
    Convert,
    CvtIntFp,
    DotProduct,
    Extract,
    ForLoop,
    Function,
    GetAlignLimit,
    GetRT,
    GetVF,
    If,
    InitAffine,
    InitPattern,
    InitReduc,
    InitUniform,
    Instr,
    Interleave,
    Load,
    LoopBound,
    Module,
    Pack,
    RealignLoad,
    Reduce,
    Return,
    Select,
    Store,
    UnOp,
    Unpack,
    Value,
    VersionGuard,
    VStore,
    WidenMult,
    Yield,
)
from ..ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    ScalarType,
    VectorType,
    scalar_type_from_name,
)
from .verify import BytecodeVerifyError
from .writer import FormatError, Reader, Writer

__all__ = [
    "encode_function",
    "decode_function",
    "encode_module",
    "decode_module",
    "MAGIC",
    "FormatError",
]

#: container magic; VBC2 added the payload CRC-32 to the header.
MAGIC = b"VBC2"

#: bytes of container header: 4 magic + 4 CRC-32 (little-endian).
_HEADER_BYTES = 8

_SCALARS = [I8, I16, I32, I64, F32, F64, BOOL]
_SCALAR_ID = {t.name: i for i, t in enumerate(_SCALARS)}

_BIN_OPS = ["add", "sub", "mul", "div", "mod", "min", "max", "and", "or",
            "xor", "shl", "shr"]
_UN_OPS = ["neg", "abs", "not", "sqrt"]
_CMP_OPS = ["eq", "ne", "lt", "le", "gt", "ge"]

# Class ids.
C_BINOP, C_UNOP, C_CMP, C_SELECT, C_CONVERT, C_LOAD, C_STORE = range(7)
C_FOR, C_IF, C_YIELD, C_RETURN = 7, 8, 9, 10
(
    C_GETVF,
    C_GETALIGN,
    C_UNIFORM,
    C_AFFINE,
    C_REDUCINIT,
    C_PATTERN,
    C_REDUCE,
    C_DOT,
    C_WIDENMULT,
    C_PACK,
    C_UNPACK,
    C_CVT,
    C_EXTRACT,
    C_INTERLEAVE,
    C_ALOAD,
    C_ALIGNLOAD,
    C_GETRT,
    C_REALIGN,
    C_VSTORE,
    C_LOOPBOUND,
    C_GUARD,
) = range(20, 41)


def _write_type(w: Writer, t) -> None:
    if isinstance(t, VectorType):
        w.u8(0x40 | _SCALAR_ID[t.elem.name])
        w.varint(0 if t.lanes is None else t.lanes)
    else:
        w.u8(_SCALAR_ID[t.name])


def _read_type(r: Reader):
    b = r.u8()
    if b & 0x40:
        elem = _SCALARS[b & 0x3F]
        lanes = r.varint()
        return VectorType(elem, None if lanes == 0 else lanes)
    return _SCALARS[b]


class _Encoder:
    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.w = Writer()
        self.ids: dict[int, int] = {}
        self.next_id = 0

    def assign(self, v: Value) -> int:
        self.ids[v.id] = self.next_id
        self.next_id += 1
        return self.ids[v.id]

    def operand(self, v: Value) -> None:
        if isinstance(v, Const):
            self.w.u8(1)
            self.w.u8(_SCALAR_ID[v.type.name])
            if v.type.is_float:
                self.w.f64(float(v.value))
            else:
                self.w.varint(int(v.value))
            return
        self.w.u8(0)
        try:
            self.w.varint(self.ids[v.id])
        except KeyError:
            raise FormatError(f"operand {v!r} used before definition") from None

    def operands(self, ops: list[Value]) -> None:
        self.w.varint(len(ops))
        for op in ops:
            self.operand(op)

    def run(self) -> bytes:
        fn = self.fn
        w = self.w
        w.string(fn.name)
        w.string(fn.form)
        w.varint(len(fn.scalar_params))
        for p in fn.scalar_params:
            w.string(p.name)
            w.u8(_SCALAR_ID[p.type.name])
            self.assign(p)
        w.varint(len(fn.array_params))
        scalar_index = {p.id: i for i, p in enumerate(fn.scalar_params)}
        for a in fn.array_params:
            w.string(a.name)
            w.u8(_SCALAR_ID[a.elem.name])
            w.u8(1 if a.may_alias else 0)
            w.varint(len(a.shape))
            for extent in a.shape:
                if isinstance(extent, int):
                    w.u8(0)
                    w.varint(extent)
                else:
                    w.u8(1)
                    w.varint(scalar_index[extent.id])
            self.assign(a)
        if fn.return_type is None:
            w.u8(0xFF)
        else:
            w.u8(_SCALAR_ID[fn.return_type.name])
        w.value({k: v for k, v in fn.annotations.items() if k == "vect_report"})
        self.block(fn.body)
        return w.bytes()

    def block(self, block: Block) -> None:
        self.w.varint(len(block.instrs))
        for instr in block.instrs:
            self.instr(instr)

    def _group(self, instr) -> None:
        g = getattr(instr, "group", None)
        self.w.varint(-1 if g is None else g)

    def instr(self, instr: Instr) -> None:
        w = self.w
        if isinstance(instr, BinOp):
            w.u8(C_BINOP)
            w.u8(_BIN_OPS.index(instr.op))
            _write_type(w, instr.type)
            self.operand(instr.lhs)
            self.operand(instr.rhs)
        elif isinstance(instr, UnOp):
            w.u8(C_UNOP)
            w.u8(_UN_OPS.index(instr.op))
            _write_type(w, instr.type)
            self.operand(instr.value)
        elif isinstance(instr, Cmp):
            w.u8(C_CMP)
            w.u8(_CMP_OPS.index(instr.op))
            self.operand(instr.lhs)
            self.operand(instr.rhs)
        elif isinstance(instr, Select):
            w.u8(C_SELECT)
            self.operand(instr.cond)
            self.operand(instr.if_true)
            self.operand(instr.if_false)
        elif isinstance(instr, Convert):
            w.u8(C_CONVERT)
            w.u8(_SCALAR_ID[instr.to.name])
            self.operand(instr.value)
        elif isinstance(instr, Load):
            w.u8(C_LOAD)
            self.operand(instr.array)
            self.operands(instr.indices)
        elif isinstance(instr, Store):
            w.u8(C_STORE)
            self.operand(instr.array)
            self.operands(instr.indices)
            self.operand(instr.value)
        elif isinstance(instr, ForLoop):
            w.u8(C_FOR)
            w.string(instr.iv.name)
            w.string(instr.kind)
            w.value(instr.annotations)
            self.operand(instr.lower)
            self.operand(instr.upper)
            self.operand(instr.step)
            self.operands(instr.init_values)
            for arg in instr.body.args:
                self.assign(arg)
            self.block(instr.body)
            for res in instr.results:
                self.assign(res)
        elif isinstance(instr, If):
            w.u8(C_IF)
            self.operand(instr.cond)
            w.varint(len(instr.results))
            for res in instr.results:
                _write_type(w, res.type)
            self.block(instr.then_block)
            self.block(instr.else_block)
            for res in instr.results:
                self.assign(res)
        elif isinstance(instr, Yield):
            w.u8(C_YIELD)
            self.operands(instr.values)
        elif isinstance(instr, Return):
            w.u8(C_RETURN)
            if instr.value is None:
                w.u8(0)
            else:
                w.u8(1)
                self.operand(instr.value)
        elif isinstance(instr, GetVF):
            w.u8(C_GETVF)
            w.u8(_SCALAR_ID[instr.elem.name])
            self._group(instr)
        elif isinstance(instr, GetAlignLimit):
            w.u8(C_GETALIGN)
            w.u8(_SCALAR_ID[instr.elem.name])
            self._group(instr)
        elif isinstance(instr, InitUniform):
            w.u8(C_UNIFORM)
            _write_type(w, instr.type)
            self._group(instr)
            self.operand(instr.val)
        elif isinstance(instr, InitAffine):
            w.u8(C_AFFINE)
            _write_type(w, instr.type)
            self._group(instr)
            self.operand(instr.val)
            self.operand(instr.inc)
        elif isinstance(instr, InitReduc):
            w.u8(C_REDUCINIT)
            _write_type(w, instr.type)
            self._group(instr)
            w.f64(float(instr.default))
            self.operand(instr.val)
        elif isinstance(instr, InitPattern):
            w.u8(C_PATTERN)
            _write_type(w, instr.type)
            self._group(instr)
            w.value(tuple(instr.pattern))
        elif isinstance(instr, Reduce):
            w.u8(C_REDUCE)
            w.u8(Reduce.KINDS.index(instr.kind))
            self._group(instr)
            self.operand(instr.vec)
        elif isinstance(instr, DotProduct):
            w.u8(C_DOT)
            self._group(instr)
            self.operand(instr.v1)
            self.operand(instr.v2)
            self.operand(instr.acc)
        elif isinstance(instr, WidenMult):
            w.u8(C_WIDENMULT)
            w.u8(0 if instr.half == "lo" else 1)
            self._group(instr)
            self.operand(instr.operands[0])
            self.operand(instr.operands[1])
        elif isinstance(instr, Pack):
            w.u8(C_PACK)
            self._group(instr)
            self.operand(instr.operands[0])
            self.operand(instr.operands[1])
        elif isinstance(instr, Unpack):
            w.u8(C_UNPACK)
            w.u8(0 if instr.half == "lo" else 1)
            self._group(instr)
            self.operand(instr.operands[0])
        elif isinstance(instr, CvtIntFp):
            w.u8(C_CVT)
            w.u8(_SCALAR_ID[instr.to.name])
            self._group(instr)
            self.operand(instr.operands[0])
        elif isinstance(instr, Extract):
            w.u8(C_EXTRACT)
            w.u8(instr.stride)
            w.u8(instr.offset)
            self._group(instr)
            self.operands(list(instr.operands))
        elif isinstance(instr, Interleave):
            w.u8(C_INTERLEAVE)
            w.u8(0 if instr.half == "lo" else 1)
            self._group(instr)
            self.operand(instr.operands[0])
            self.operand(instr.operands[1])
        elif isinstance(instr, ALoad):
            w.u8(C_ALOAD)
            _write_type(w, instr.type)
            self._group(instr)
            self.operand(instr.array)
            self.operand(instr.index)
        elif isinstance(instr, AlignLoad):
            w.u8(C_ALIGNLOAD)
            _write_type(w, instr.type)
            self._group(instr)
            self.operand(instr.array)
            self.operand(instr.index)
        elif isinstance(instr, GetRT):
            w.u8(C_GETRT)
            self._group(instr)
            w.varint(instr.mis)
            w.varint(instr.mod)
            self.operand(instr.array)
            self.operand(instr.index)
        elif isinstance(instr, RealignLoad):
            w.u8(C_REALIGN)
            _write_type(w, instr.type)
            self._group(instr)
            w.varint(instr.mis)
            w.varint(instr.mod)
            w.varint(instr.step_bytes)
            w.u8(1 if instr.has_chain else 0)
            self.operand(instr.array)
            self.operand(instr.index)
            if instr.has_chain:
                self.operand(instr.v1)
                self.operand(instr.v2)
                self.operand(instr.rt)
        elif isinstance(instr, VStore):
            w.u8(C_VSTORE)
            self._group(instr)
            w.varint(instr.mis)
            w.varint(instr.mod)
            w.varint(instr.step_bytes)
            w.u8(1 if instr.aligned_by_peel else 0)
            self.operand(instr.array)
            self.operand(instr.index)
            self.operand(instr.value)
        elif isinstance(instr, LoopBound):
            w.u8(C_LOOPBOUND)
            self._group(instr)
            self.operand(instr.vect)
            self.operand(instr.scalar)
        elif isinstance(instr, VersionGuard):
            w.u8(C_GUARD)
            w.u8(VersionGuard.KINDS.index(instr.kind))
            self._group(instr)
            w.value(instr.params)
            self.operands(list(instr.operands))
        else:
            raise FormatError(f"unencodable instruction {instr!r}")
        self.assign(instr)


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.r = Reader(data)
        self.values: list[Value] = []

    def operand(self) -> Value:
        tag = self.r.u8()
        if tag == 1:
            t = _SCALARS[self.r.u8()]
            if t.is_float:
                return Const(self.r.f64(), t)
            return Const(self.r.varint(), t)
        idx = self.r.varint()
        try:
            return self.values[idx]
        except IndexError:
            raise FormatError(f"bad value index {idx}") from None

    def operands(self) -> list[Value]:
        return [self.operand() for _ in range(self.r.varint())]

    def run(self) -> Function:
        r = self.r
        name = r.string()
        form = r.string()
        scalar_params = []
        for _ in range(r.varint()):
            pname = r.string()
            t = _SCALARS[r.u8()]
            p = Argument(pname, t)
            scalar_params.append(p)
            self.values.append(p)
        array_params = []
        for _ in range(r.varint()):
            aname = r.string()
            elem = _SCALARS[r.u8()]
            may_alias = bool(r.u8())
            shape = []
            for _ in range(r.varint()):
                tag = r.u8()
                if tag == 0:
                    shape.append(r.varint())
                else:
                    shape.append(scalar_params[r.varint()])
            a = ArrayRef(aname, elem, tuple(shape), may_alias=may_alias)
            array_params.append(a)
            self.values.append(a)
        ret_byte = r.u8()
        ret = None if ret_byte == 0xFF else _SCALARS[ret_byte]
        annotations = r.value() or {}
        fn = Function(name, scalar_params, array_params, ret)
        fn.form = form
        fn.annotations = dict(annotations)
        self.block_into(fn.body)
        return fn

    def block_into(self, block: Block) -> None:
        count = self.r.varint()
        for _ in range(count):
            block.append(self.instr())

    def _group(self, instr) -> None:
        g = self.r.varint()
        if g >= 0:
            instr.group = g

    def instr(self) -> Instr:
        r = self.r
        cid = r.u8()
        if cid == C_BINOP:
            op = _BIN_OPS[r.u8()]
            t = _read_type(r)
            out: Instr = BinOp(op, self.operand(), self.operand())
            out.type = t
        elif cid == C_UNOP:
            op = _UN_OPS[r.u8()]
            t = _read_type(r)
            out = UnOp(op, self.operand())
            out.type = t
        elif cid == C_CMP:
            op = _CMP_OPS[r.u8()]
            out = Cmp(op, self.operand(), self.operand())
        elif cid == C_SELECT:
            out = Select(self.operand(), self.operand(), self.operand())
        elif cid == C_CONVERT:
            to = _SCALARS[r.u8()]
            out = Convert(self.operand(), to)
        elif cid == C_LOAD:
            arr = self.operand()
            out = Load(arr, self.operands())
        elif cid == C_STORE:
            arr = self.operand()
            idxs = self.operands()
            out = Store(arr, idxs, self.operand())
        elif cid == C_FOR:
            iv_name = r.string()
            kind = r.string()
            annotations = r.value() or {}
            lower = self.operand()
            upper = self.operand()
            step = self.operand()
            inits = self.operands()
            loop = ForLoop(lower, upper, step, inits, iv_name=iv_name, kind=kind)
            loop.annotations = dict(annotations)
            for arg in loop.body.args:
                self.values.append(arg)
            self.block_into(loop.body)
            for res in loop.results:
                self.values.append(res)
            out = loop
        elif cid == C_IF:
            cond = self.operand()
            result_types = [_read_type(r) for _ in range(r.varint())]
            ifop = If(cond, result_types)
            self.block_into(ifop.then_block)
            self.block_into(ifop.else_block)
            for res in ifop.results:
                self.values.append(res)
            out = ifop
        elif cid == C_YIELD:
            out = Yield(self.operands())
        elif cid == C_RETURN:
            has = r.u8()
            out = Return(self.operand() if has else None)
        elif cid == C_GETVF:
            out = GetVF(_SCALARS[r.u8()])
            self._group(out)
        elif cid == C_GETALIGN:
            out = GetAlignLimit(_SCALARS[r.u8()])
            self._group(out)
        elif cid == C_UNIFORM:
            t = _read_type(r)
            out = InitUniform.__new__(InitUniform)
            g = r.varint()
            val = self.operand()
            out = InitUniform(t, val)
            if g >= 0:
                out.group = g
        elif cid == C_AFFINE:
            t = _read_type(r)
            g = r.varint()
            out = InitAffine(t, self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_REDUCINIT:
            t = _read_type(r)
            g = r.varint()
            default = r.f64()
            if not t.elem.is_float:
                default = int(default)
            out = InitReduc(t, self.operand(), default)
            if g >= 0:
                out.group = g
        elif cid == C_PATTERN:
            t = _read_type(r)
            g = r.varint()
            pattern = r.value()
            out = InitPattern(t, pattern)
            if g >= 0:
                out.group = g
        elif cid == C_REDUCE:
            kind = Reduce.KINDS[r.u8()]
            g = r.varint()
            out = Reduce(kind, self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_DOT:
            g = r.varint()
            out = DotProduct(self.operand(), self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_WIDENMULT:
            half = "lo" if r.u8() == 0 else "hi"
            g = r.varint()
            out = WidenMult(half, self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_PACK:
            g = r.varint()
            out = Pack(self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_UNPACK:
            half = "lo" if r.u8() == 0 else "hi"
            g = r.varint()
            out = Unpack(half, self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_CVT:
            to = _SCALARS[r.u8()]
            g = r.varint()
            out = CvtIntFp(self.operand(), to)
            if g >= 0:
                out.group = g
        elif cid == C_EXTRACT:
            stride = r.u8()
            offset = r.u8()
            g = r.varint()
            out = Extract(stride, offset, self.operands())
            if g >= 0:
                out.group = g
        elif cid == C_INTERLEAVE:
            half = "lo" if r.u8() == 0 else "hi"
            g = r.varint()
            out = Interleave(half, self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_ALOAD:
            t = _read_type(r)
            g = r.varint()
            out = ALoad(t, self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_ALIGNLOAD:
            t = _read_type(r)
            g = r.varint()
            out = AlignLoad(t, self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_GETRT:
            g = r.varint()
            mis = r.varint()
            mod = r.varint()
            out = GetRT(self.operand(), self.operand(), mis, mod)
            if g >= 0:
                out.group = g
        elif cid == C_REALIGN:
            t = _read_type(r)
            g = r.varint()
            mis = r.varint()
            mod = r.varint()
            step_bytes = r.varint()
            has_chain = bool(r.u8())
            arr = self.operand()
            idx = self.operand()
            if has_chain:
                v1, v2, rt = self.operand(), self.operand(), self.operand()
            else:
                v1 = v2 = rt = None
            out = RealignLoad(t, arr, idx, v1, v2, rt, mis, mod)
            out.step_bytes = step_bytes
            if g >= 0:
                out.group = g
        elif cid == C_VSTORE:
            g = r.varint()
            mis = r.varint()
            mod = r.varint()
            step_bytes = r.varint()
            aligned_by_peel = bool(r.u8())
            arr = self.operand()
            idx = self.operand()
            val = self.operand()
            out = VStore(arr, idx, val, mis, mod)
            out.step_bytes = step_bytes
            out.aligned_by_peel = aligned_by_peel
            if g >= 0:
                out.group = g
        elif cid == C_LOOPBOUND:
            g = r.varint()
            out = LoopBound(self.operand(), self.operand())
            if g >= 0:
                out.group = g
        elif cid == C_GUARD:
            kind = VersionGuard.KINDS[r.u8()]
            g = r.varint()
            params = r.value() or {}
            ops = self.operands()
            out = VersionGuard(kind, ops, dict(params))
            if g >= 0:
                out.group = g
        else:
            raise FormatError(f"unknown class id {cid}")
        self.values.append(out)
        return out


def encode_function(fn: Function) -> bytes:
    """Serialize one function to Vapor bytecode (without container header)."""
    return _Encoder(fn).run()


def decode_function(data: bytes) -> Function:
    """Deserialize one function (strict).

    Every malformation — truncation, out-of-range opcode/type/operand
    ids, malformed attribute values, trailing garbage — raises a
    positioned :class:`FormatError`; stray ``IndexError``/``KeyError``
    etc. from the raw reader never escape.
    """
    dec = _Decoder(data)
    try:
        fn = dec.run()
    except FormatError:
        raise
    except (IndexError, KeyError, ValueError, TypeError, OverflowError,
            AttributeError, AssertionError) as exc:
        raise FormatError(
            f"malformed function stream: {type(exc).__name__}: {exc}",
            offset=dec.r.pos,
        ) from None
    if not dec.r.exhausted:
        raise FormatError(
            f"{len(data) - dec.r.pos} trailing bytes after function body",
            offset=dec.r.pos,
        )
    return fn


def encode_module(module: Module) -> bytes:
    """Serialize a module with the VBC2 container header.

    Layout: ``"VBC2"  u32le(crc32(payload))  payload`` where payload is
    ``varint(function_count) { varint(len) function_bytes }*``.  The
    CRC-32 makes any single-byte corruption of the container detectable
    at decode time — corrupt streams are rejected before they can reach
    the JIT or the VM.
    """
    p = Writer()
    p.varint(len(module.functions))
    for fn in module:
        body = encode_function(fn)
        p.varint(len(body))
        p.buf.extend(body)
    payload = p.bytes()
    out = bytearray(MAGIC)
    out.extend(struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF))
    out.extend(payload)
    # Fault-injection point: an active FaultPlan's bit-flips corrupt the
    # stream here, exercising the decode-side defenses end to end.
    return faults.corrupt(bytes(out))


def decode_module(data: bytes) -> Module:
    """Deserialize a VBC2 container (strict, checksum-verified).

    Raises classified :class:`~repro.bytecode.verify.BytecodeVerifyError`
    subtypes of :class:`FormatError`: ``bad-magic``, ``bad-checksum``,
    ``truncated``, ``bad-function``, ``trailing``.
    """
    if len(data) < _HEADER_BYTES:
        raise BytecodeVerifyError(
            "truncated",
            f"container of {len(data)} bytes, need >= {_HEADER_BYTES} "
            f"header bytes",
            offset=len(data),
        )
    if data[:4] != MAGIC:
        raise BytecodeVerifyError(
            "bad-magic",
            f"bad magic: expected {MAGIC!r}, got {bytes(data[:4])!r}",
            offset=0,
        )
    (stored,) = struct.unpack("<I", data[4:_HEADER_BYTES])
    payload = data[_HEADER_BYTES:]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if stored != actual:
        raise BytecodeVerifyError(
            "bad-checksum",
            f"container checksum mismatch: header 0x{stored:08x}, "
            f"payload 0x{actual:08x}",
            offset=4,
        )
    r = Reader(payload)
    module = Module()
    count = r.varint()
    if count < 0:
        raise BytecodeVerifyError(
            "truncated", f"negative function count {count}", offset=0
        )
    for i in range(count):
        n = r.varint()
        if n < 0:
            raise BytecodeVerifyError(
                "truncated",
                f"negative length {n} for function #{i}",
                offset=_HEADER_BYTES + r.pos,
            )
        chunk = r.data[r.pos : r.pos + n]
        if len(chunk) != n:
            raise BytecodeVerifyError(
                "truncated",
                f"truncated function #{i}: need {n} bytes, got {len(chunk)}",
                offset=_HEADER_BYTES + r.pos,
            )
        r.pos += n
        try:
            module.add(decode_function(chunk))
        except BytecodeVerifyError:
            raise
        except FormatError as exc:
            raise BytecodeVerifyError(
                "bad-function", f"function #{i}: {exc}"
            ) from None
    if not r.exhausted:
        raise BytecodeVerifyError(
            "trailing",
            f"{len(payload) - r.pos} trailing bytes after last function",
            offset=_HEADER_BYTES + r.pos,
        )
    return module
