"""Low-level binary writer/reader for the Vapor bytecode container.

Varint-based, little-endian, with a tagged value scheme for instruction
attributes.  Compactness matters: the paper reports vectorized bytecode
size (~5x scalar) and shows JIT compile time is proportional to it, and we
reproduce those measurements from real encoded bytes.
"""

from __future__ import annotations

import struct

from ..errors import ReproError

__all__ = ["Writer", "Reader", "FormatError"]


class FormatError(ReproError):
    """Raised on malformed bytecode.

    Attributes:
        offset: byte offset into the stream where the problem was
            detected (None when not applicable, e.g. encode-side errors).
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"{message} (at stream offset {offset})"
        super().__init__(message)
        self.offset = offset


class Writer:
    """Appends primitives to a growing byte buffer."""

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf.append(v & 0xFF)

    def varint(self, v: int) -> None:
        """ZigZag varint (handles negative hints like mis offsets)."""
        z = (v << 1) ^ (v >> 63) if v < 0 else v << 1
        while True:
            b = z & 0x7F
            z >>= 7
            if z:
                self.buf.append(b | 0x80)
            else:
                self.buf.append(b)
                return

    def f64(self, v: float) -> None:
        self.buf.extend(struct.pack("<d", v))

    def string(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.varint(len(raw))
        self.buf.extend(raw)

    def value(self, v) -> None:
        """Tagged attribute value: int, float, bool, str, None, tuple/list,
        dict with string keys."""
        if v is None:
            self.u8(0)
        elif isinstance(v, bool):
            self.u8(1)
            self.u8(1 if v else 0)
        elif isinstance(v, int):
            self.u8(2)
            self.varint(v)
        elif isinstance(v, float):
            self.u8(3)
            self.f64(v)
        elif isinstance(v, str):
            self.u8(4)
            self.string(v)
        elif isinstance(v, (tuple, list)):
            self.u8(5)
            self.varint(len(v))
            for item in v:
                self.value(item)
        elif isinstance(v, dict):
            self.u8(6)
            self.varint(len(v))
            for k, item in sorted(v.items()):
                self.string(k)
                self.value(item)
        else:
            raise FormatError(f"unencodable attribute value {v!r}")

    def bytes(self) -> bytes:
        return bytes(self.buf)


class Reader:
    """Cursor-based reader over an immutable byte string."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise FormatError(
                f"truncated bytecode: need 1 byte, stream ends at "
                f"{len(self.data)}",
                offset=self.pos,
            )
        b = self.data[self.pos]
        self.pos += 1
        return b

    def varint(self) -> int:
        z = 0
        shift = 0
        start = self.pos
        while True:
            b = self.u8()
            z |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
            if shift > 70:
                raise FormatError("varint too long", offset=start)
        return (z >> 1) ^ -(z & 1)

    def f64(self) -> float:
        raw = self.data[self.pos : self.pos + 8]
        if len(raw) != 8:
            raise FormatError(
                f"truncated float: need 8 bytes, got {len(raw)}",
                offset=self.pos,
            )
        self.pos += 8
        return struct.unpack("<d", raw)[0]

    def string(self) -> str:
        start = self.pos
        n = self.varint()
        if n < 0:
            raise FormatError(f"negative string length {n}", offset=start)
        raw = self.data[self.pos : self.pos + n]
        if len(raw) != n:
            raise FormatError(
                f"truncated string: need {n} bytes, got {len(raw)}",
                offset=self.pos,
            )
        self.pos += n
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FormatError(
                f"malformed utf-8 string: {exc}", offset=self.pos - n
            ) from None

    def value(self):
        start = self.pos
        tag = self.u8()
        if tag == 0:
            return None
        if tag == 1:
            return bool(self.u8())
        if tag == 2:
            return self.varint()
        if tag == 3:
            return self.f64()
        if tag == 4:
            return self.string()
        if tag == 5:
            return tuple(self.value() for _ in range(self.varint()))
        if tag == 6:
            return {self.string(): self.value() for _ in range(self.varint())}
        raise FormatError(f"bad value tag {tag}", offset=start)

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)
