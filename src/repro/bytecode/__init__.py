"""The split layer's bytecode container (the CLI stand-in)."""

from .codec import (
    MAGIC,
    FormatError,
    decode_function,
    decode_module,
    encode_function,
    encode_module,
)
from .verify import (
    BytecodeVerifyError,
    verify_function_bytecode,
    verify_module,
    verify_module_bytes,
)

__all__ = [
    "encode_function",
    "decode_function",
    "encode_module",
    "decode_module",
    "MAGIC",
    "FormatError",
    "BytecodeVerifyError",
    "verify_function_bytecode",
    "verify_module",
    "verify_module_bytes",
]
