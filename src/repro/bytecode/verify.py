"""Bytecode verification: validate decoded modules before JIT consumption.

The split design hands the online compiler a bytecode stream produced on a
*different* machine at a *different* time — the compiler must treat it as
untrusted input.  Three independent defenses reject a corrupt stream
before it can crash deep inside materialization or, worse, execute to a
silently wrong answer:

1. the **container checksum** (:func:`repro.bytecode.decode_module`): a
   CRC-32 over the payload catches *any* single-byte (indeed any
   burst-<32-bit) corruption of the encoded container;
2. **strict decoding** (:mod:`repro.bytecode.codec`): truncation, bad
   magic, out-of-range opcode/type/operand ids and malformed attribute
   values raise positioned :class:`~repro.bytecode.writer.FormatError`\\ s
   instead of leaking ``IndexError`` from the reader;
3. **structural verification** (this module): the decoded IR is checked
   against the full invariant set of :mod:`repro.ir.verifier` plus
   bytecode-specific well-formedness rules (idiom operand shapes, group
   ids, alignment hints) — catching corruptions of *semantic* bytes that
   still decode.

All rejections are classified :class:`BytecodeVerifyError`\\ s (a
:class:`~repro.bytecode.writer.FormatError` subclass, hence a
:class:`~repro.errors.ReproError`), each carrying a machine-readable
``kind`` tag.
"""

from __future__ import annotations

from ..ir import (
    ForLoop,
    Function,
    IdiomInstr,
    InitPattern,
    Module,
    RealignLoad,
    Reduce,
    VersionGuard,
    VStore,
    verify_function,
    walk,
)
from ..ir.verifier import VerificationError
from .writer import FormatError

__all__ = [
    "BytecodeVerifyError",
    "verify_module",
    "verify_function_bytecode",
    "verify_module_bytes",
    "KINDS",
]

#: classification tags carried by :class:`BytecodeVerifyError`.
KINDS = (
    "bad-magic",       # container prefix is not the VBC magic
    "bad-checksum",    # payload does not match the header CRC-32
    "truncated",       # stream ends mid-structure
    "trailing",        # well-formed prefix followed by garbage
    "bad-function",    # a function stream failed strict decoding
    "bad-structure",   # decoded IR violates a structural/type invariant
    "bad-idiom",       # a Table 1 idiom is malformed
)


class BytecodeVerifyError(FormatError):
    """Classified bytecode verification failure.

    Attributes:
        kind: one of :data:`KINDS`.
        offset: stream offset of the problem, when known.
    """

    def __init__(self, kind: str, message: str,
                 offset: int | None = None) -> None:
        super().__init__(f"[{kind}] {message}", offset=offset)
        self.kind = kind


def _bad_idiom(fn: Function, instr, why: str) -> BytecodeVerifyError:
    return BytecodeVerifyError(
        "bad-idiom", f"{fn.name}: {instr.mnemonic}: {why}"
    )


def verify_function_bytecode(fn: Function) -> None:
    """Verify one decoded function; raises :class:`BytecodeVerifyError`.

    Runs the full IR verifier (def-before-use, loop/yield arity, operand
    types, memory-op shapes) and then the bytecode-specific idiom rules:

    * ``group`` tags are non-negative integers;
    * alignment hints satisfy ``0 <= mis`` and ``mod >= 0`` with
      ``mis < mod`` when ``mod`` is known, and step sizes are positive;
    * ``init_pattern`` carries a non-empty numeric pattern;
    * ``reduc_*`` / ``version_guard`` kinds are from the known sets (the
      decoder enforces this; re-checked here for IR built by other
      producers);
    * vector loops carry sane annotations (``vect_group`` int if present).
    """
    try:
        verify_function(fn)
    except VerificationError as exc:
        raise BytecodeVerifyError(
            "bad-structure", f"{fn.name}: {exc}"
        ) from None

    for instr in walk(fn.body):
        if isinstance(instr, IdiomInstr):
            g = getattr(instr, "group", None)
            if g is not None and (not isinstance(g, int) or g < 0):
                raise _bad_idiom(fn, instr, f"bad group tag {g!r}")
        if isinstance(instr, (RealignLoad, VStore)):
            if instr.mis < 0 or instr.mod < 0:
                raise _bad_idiom(
                    fn, instr, f"negative alignment hint "
                    f"(mis={instr.mis}, mod={instr.mod})"
                )
            step = getattr(instr, "step_bytes", 0)
            if step < 0:
                raise _bad_idiom(fn, instr, f"negative step_bytes {step}")
        if isinstance(instr, InitPattern):
            pat = tuple(instr.pattern)
            if not pat:
                raise _bad_idiom(fn, instr, "empty pattern")
            if not all(isinstance(v, (int, float)) for v in pat):
                raise _bad_idiom(fn, instr, f"non-numeric pattern {pat!r}")
        if isinstance(instr, Reduce) and instr.kind not in Reduce.KINDS:
            raise _bad_idiom(fn, instr, f"unknown reduction {instr.kind!r}")
        if isinstance(instr, VersionGuard):
            if instr.kind not in VersionGuard.KINDS:
                raise _bad_idiom(fn, instr, f"unknown guard {instr.kind!r}")
            if not all(isinstance(k, str) for k in instr.params):
                raise _bad_idiom(fn, instr, "non-string guard param keys")
        if isinstance(instr, ForLoop):
            vg = instr.annotations.get("vect_group")
            if vg is not None and not isinstance(vg, int):
                raise BytecodeVerifyError(
                    "bad-structure",
                    f"{fn.name}: loop vect_group tag {vg!r} is not an int",
                )


def verify_module(module: Module) -> None:
    """Verify every function of a decoded module; raises
    :class:`BytecodeVerifyError` on the first problem."""
    seen: set[str] = set()
    for fn in module:
        if not fn.name:
            raise BytecodeVerifyError("bad-structure", "unnamed function")
        if fn.name in seen:
            raise BytecodeVerifyError(
                "bad-structure", f"duplicate function {fn.name!r}"
            )
        seen.add(fn.name)
        verify_function_bytecode(fn)


def verify_module_bytes(data: bytes) -> Module:
    """Decode *and* verify a VBC container; the one-stop entry used by the
    JIT path and the ``repro verify`` CLI.  Returns the verified module or
    raises a classified :class:`~repro.bytecode.writer.FormatError`."""
    from .codec import decode_module

    module = decode_module(data)
    verify_module(module)
    return module
