"""Deprecation shims for the API normalization (see docs/api.md).

Every deprecated alias funnels through :func:`warn_once`, which emits a
:class:`DeprecationWarning` **exactly once per process per alias** —
loud enough to notice, quiet enough not to spam a million-request
service log.  Tests reset the registry via :func:`reset`.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset"]

_WARNED: set[str] = set()


def warn_once(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Warn that ``old`` is deprecated in favour of ``new`` (once)."""
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset() -> None:
    """Forget which aliases already warned (test isolation hook)."""
    _WARNED.clear()
