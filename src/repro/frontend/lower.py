"""AST → IR lowering.

The one non-mechanical job here is *scalar promotion*: mutable local scalars
(reduction accumulators, running maxima, ...) become loop/if iteration
arguments, giving the vectorizer clean SSA def-use chains — the paper lists
scalar promotion among the normalizations applied before vectorization.
"""

from __future__ import annotations

from ..ir import (
    Argument,
    ArrayRef,
    Const,
    Function,
    IRBuilder,
    Module,
    UnOp,
    Yield,
)
from ..ir.types import BOOL, I32, scalar_type_from_name
from .ast_nodes import (
    ArrayParam,
    AssignStmt,
    BinExpr,
    BlockStmt,
    CallExpr,
    CastExpr,
    DeclStmt,
    Expr,
    ForStmt,
    FuncDef,
    IfStmt,
    IndexExpr,
    NumLit,
    Program,
    ReturnStmt,
    ScalarParam,
    TernaryExpr,
    UnExpr,
    VarExpr,
)
from .sema import SemaError

__all__ = ["lower_program", "lower_function"]

_BIN_OP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "&&": "and",
    "||": "or",
}

_CMP_OP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


def _assigned_vars(stmts: list, declared: set[str]) -> set[str]:
    """Scalar names assigned in ``stmts`` that were declared *outside*.

    ``declared`` accumulates names declared within the subtree so they are
    excluded (they are fresh per iteration, not loop-carried).
    """
    assigned: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, DeclStmt):
            declared.add(stmt.name)
        elif isinstance(stmt, AssignStmt):
            if isinstance(stmt.target, VarExpr) and stmt.target.name not in declared:
                assigned.add(stmt.target.name)
        elif isinstance(stmt, ForStmt):
            inner_declared = set(declared)
            if stmt.iv_decl_type is not None:
                inner_declared.add(stmt.iv)
            else:
                assigned.add(stmt.iv)
            assigned |= _assigned_vars(stmt.body.stmts, inner_declared)
        elif isinstance(stmt, IfStmt):
            assigned |= _assigned_vars(stmt.then_body.stmts, set(declared))
            if stmt.else_body is not None:
                assigned |= _assigned_vars(stmt.else_body.stmts, set(declared))
        elif isinstance(stmt, BlockStmt):
            assigned |= _assigned_vars(stmt.stmts, set(declared))
    return assigned


class _Poisoned:
    """Marks a value that may not be read (loop IV after its loop)."""

    def __init__(self, name: str) -> None:
        self.name = name


class _Lowerer:
    def __init__(self, fn_ast: FuncDef) -> None:
        self.ast = fn_ast
        scalar_params = []
        array_params = []
        self.env: dict[str, object] = {}
        for p in fn_ast.params:
            if isinstance(p, ScalarParam):
                arg = Argument(p.name, scalar_type_from_name(p.type_name))
                scalar_params.append(arg)
                self.env[p.name] = arg
        for p in fn_ast.params:
            if isinstance(p, ArrayParam):
                shape = []
                for k, d in enumerate(p.dims):
                    if isinstance(d, int):
                        shape.append(d)
                    elif isinstance(d, str):
                        extent = self.env.get(d)
                        if not isinstance(extent, Argument):
                            raise SemaError(
                                f"array {p.name}: extent {d!r} is not a "
                                "scalar parameter",
                                p.line,
                            )
                        shape.append(extent)
                    elif d is None:
                        if k != 0:
                            raise SemaError(
                                f"array {p.name}: only the outer dimension "
                                "may be unsized",
                                p.line,
                            )
                        shape.append(0)
                arr = ArrayRef(
                    p.name,
                    scalar_type_from_name(p.elem_type),
                    tuple(shape),
                    may_alias=p.may_alias,
                )
                array_params.append(arr)
                self.env[p.name] = arr
        ret = (
            None
            if fn_ast.return_type == "void"
            else scalar_type_from_name(fn_ast.return_type)
        )
        self.fn = Function(fn_ast.name, scalar_params, array_params, ret)
        self.b = IRBuilder(self.fn.body)

    def run(self) -> Function:
        self.lower_block(self.ast.body)
        if self.fn.return_type is None and not isinstance(
            self.fn.body.terminator, type(None)
        ):
            pass
        if self.fn.body.terminator is None:
            self.b.ret(None)
        return self.fn

    # -- statements ---------------------------------------------------------

    def lower_block(self, blk: BlockStmt) -> None:
        saved = dict(self.env)
        declared_here: set[str] = set()
        for stmt in blk.stmts:
            self.lower_stmt(stmt, declared_here)
        # Names declared in this block go out of scope; outer names keep
        # their (possibly updated) values.
        for name in declared_here:
            if name in saved:
                self.env[name] = saved[name]
            else:
                self.env.pop(name, None)

    def lower_stmt(self, stmt, declared_here: set[str]) -> None:
        if isinstance(stmt, BlockStmt):
            self.lower_block(stmt)
        elif isinstance(stmt, DeclStmt):
            t = scalar_type_from_name(stmt.type_name)
            if stmt.init is not None:
                self.env[stmt.name] = self.expr(stmt.init)
            else:
                self.env[stmt.name] = Const(0, t)
            declared_here.add(stmt.name)
        elif isinstance(stmt, AssignStmt):
            value = self.expr(stmt.value)
            target = stmt.target
            if isinstance(target, VarExpr):
                self.env[target.name] = value
            else:
                assert isinstance(target, IndexExpr)
                arr = self.env[target.name]
                indices = [self.expr(ix) for ix in target.indices]
                self.b.store(arr, indices, value)
        elif isinstance(stmt, ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, ReturnStmt):
            value = self.expr(stmt.value) if stmt.value is not None else None
            self.b.ret(value)
        else:
            raise SemaError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def lower_for(self, stmt: ForStmt) -> None:
        lower = self.expr(stmt.lower)
        upper = self.expr(stmt.upper)
        if stmt.inclusive:
            upper = self.b.add(upper, Const(1, I32))
        carried_names = sorted(
            n
            for n in _assigned_vars(
                stmt.body.stmts,
                {stmt.iv} if stmt.iv_decl_type is not None else set(),
            )
            if n != stmt.iv
            and n in self.env
            and not isinstance(self.env[n], (ArrayRef, _Poisoned))
        )
        inits = [self.env[n] for n in carried_names]
        loop = self.b.for_loop(lower, upper, stmt.step, inits, iv_name=stmt.iv)
        saved = {n: self.env[n] for n in carried_names}
        saved_iv = self.env.get(stmt.iv)
        self.env[stmt.iv] = loop.iv
        for n, arg in zip(carried_names, loop.carried):
            self.env[n] = arg
        self.b.push(loop.body)
        self.lower_block(stmt.body)
        yields = [self.env[n] for n in carried_names]
        self.b.pop()
        self.b.end_loop(loop, yields)
        for n, res in zip(carried_names, loop.results):
            self.env[n] = res
        # The induction variable's post-loop value is ill-defined for our
        # structured loops; poison it so accidental reads are diagnosed.
        if stmt.iv_decl_type is None and saved_iv is not None:
            self.env[stmt.iv] = _Poisoned(stmt.iv)
        else:
            self.env.pop(stmt.iv, None)
        del saved

    def lower_if(self, stmt: IfStmt) -> None:
        cond = self.expr(stmt.cond)
        assigned = sorted(
            n
            for n in _assigned_vars(
                stmt.then_body.stmts
                + (stmt.else_body.stmts if stmt.else_body else []),
                set(),
            )
            if n in self.env and not isinstance(self.env[n], (ArrayRef, _Poisoned))
        )
        result_types = [self.env[n].type for n in assigned]
        if_op = self.b.if_op(cond, result_types)
        saved = {n: self.env[n] for n in assigned}
        self.b.push(if_op.then_block)
        self.lower_block(stmt.then_body)
        then_vals = [self.env[n] for n in assigned]
        if_op.then_block.append(Yield(then_vals))
        self.b.pop()
        for n, v in saved.items():
            self.env[n] = v
        self.b.push(if_op.else_block)
        if stmt.else_body is not None:
            self.lower_block(stmt.else_body)
        else_vals = [self.env[n] for n in assigned]
        if_op.else_block.append(Yield(else_vals))
        self.b.pop()
        for n, r in zip(assigned, if_op.results):
            self.env[n] = r

    # -- expressions -------------------------------------------------------

    def expr(self, e: Expr):
        if isinstance(e, NumLit):
            return Const(e.value, e.ctype)
        if isinstance(e, VarExpr):
            v = self.env.get(e.name)
            if isinstance(v, _Poisoned):
                raise SemaError(
                    f"loop variable {e.name!r} read after its loop", e.line
                )
            if v is None:
                raise SemaError(f"undefined {e.name!r}", e.line)
            return v
        if isinstance(e, IndexExpr):
            arr = self.env[e.name]
            indices = [self.expr(ix) for ix in e.indices]
            return self.b.load(arr, indices)
        if isinstance(e, BinExpr):
            lhs = self.expr(e.lhs)
            rhs = self.expr(e.rhs)
            if e.op in _CMP_OP_MAP:
                return self.b.cmp(_CMP_OP_MAP[e.op], lhs, rhs)
            return self.b.binop(_BIN_OP_MAP[e.op], lhs, rhs)
        if isinstance(e, UnExpr):
            v = self.expr(e.operand)
            if e.op == "-":
                return self.b.neg(v)
            if e.op == "!":
                return self.b.cmp("eq", v, Const(0, v.type))
            if e.op == "~":
                return self.b.emit(UnOp("not", v))
            raise SemaError(f"unknown unary {e.op!r}", e.line)
        if isinstance(e, TernaryExpr):
            cond = self.expr(e.cond)
            t = self.expr(e.if_true)
            f = self.expr(e.if_false)
            return self.b.select(cond, t, f)
        if isinstance(e, CallExpr):
            args = [self.expr(a) for a in e.args]
            if e.callee in ("abs", "fabs"):
                return self.b.abs(args[0])
            if e.callee == "min":
                return self.b.min(args[0], args[1])
            if e.callee == "max":
                return self.b.max(args[0], args[1])
            if e.callee == "sqrt":
                return self.b.emit(UnOp("sqrt", args[0]))
            raise SemaError(f"unknown call {e.callee!r}", e.line)
        if isinstance(e, CastExpr):
            return self.b.convert(self.expr(e.operand), scalar_type_from_name(e.to))
        raise SemaError(f"cannot lower expression {type(e).__name__}", e.line)


def lower_function(fn_ast: FuncDef) -> Function:
    """Lower one analyzed function AST to IR."""
    return _Lowerer(fn_ast).run()


def lower_program(program: Program, name: str = "module") -> Module:
    """Lower an analyzed program to an IR module."""
    module = Module(name)
    for fn_ast in program.functions:
        module.add(lower_function(fn_ast))
    return module
