"""Semantic analysis for VaporC.

Performs name resolution and type checking, and *normalizes* the AST so that
lowering is mechanical:

* every expression node gets its ``ctype`` filled in;
* implicit conversions become explicit :class:`CastExpr` nodes, so after
  sema every ``BinExpr`` has identically typed operands;
* "flexible" numeric literals adopt the type of their context (C-style
  ``2.0`` next to a ``float`` array stays f32 arithmetic, matching what the
  paper's kernels mean);
* array subscripts are rank-checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..ir.types import BOOL, F32, F64, I32, ScalarType, scalar_type_from_name
from .ast_nodes import (
    ArrayParam,
    AssignStmt,
    BinExpr,
    BlockStmt,
    CallExpr,
    CastExpr,
    DeclStmt,
    Expr,
    ForStmt,
    FuncDef,
    IfStmt,
    IndexExpr,
    NumLit,
    Program,
    ReturnStmt,
    ScalarParam,
    TernaryExpr,
    UnExpr,
    VarExpr,
)

__all__ = ["analyze", "SemaError", "ArrayInfo"]

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_LOGIC_OPS = ("&&", "||")
_BITWISE_OPS = ("&", "|", "^", "<<", ">>", "%")


class SemaError(ReproError):
    """Raised on a type or name error, with the source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


@dataclass
class ArrayInfo:
    """Resolved array parameter: element type and dimension spellings."""

    elem: ScalarType
    dims: list
    may_alias: bool


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.scalars: dict[str, ScalarType] = {}
        self.arrays: dict[str, ArrayInfo] = {}

    def lookup_scalar(self, name: str) -> ScalarType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.scalars:
                return scope.scalars[name]
            scope = scope.parent
        return None

    def lookup_array(self, name: str) -> ArrayInfo | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.arrays:
                return scope.arrays[name]
            scope = scope.parent
        return None


def _is_flexible(expr: Expr) -> bool:
    return isinstance(expr, NumLit)


def _rank(t: ScalarType) -> int:
    order = ["bool", "i8", "i16", "i32", "i64", "f32", "f64"]
    return order.index(t.name)


def _unify(a: ScalarType, b: ScalarType) -> ScalarType:
    """C-style usual arithmetic conversion, restricted to our types."""
    if a == b:
        return a
    if a.is_float or b.is_float:
        floats = [t for t in (a, b) if t.is_float]
        return max(floats, key=lambda t: t.size)
    wider = a if a.size >= b.size else b
    # Small ints promote to at least i32 under mixed arithmetic, C-style,
    # but VaporC keeps same-width small-int arithmetic narrow so the
    # vectorizer sees the real element width (GCC's vectorizer similarly
    # undoes promotion via over-widening detection).
    return wider


def _cast(expr: Expr, to: ScalarType) -> Expr:
    if expr.ctype == to:
        return expr
    if isinstance(expr, NumLit):
        # Retype the literal in place rather than emitting a runtime cast.
        expr.ctype = to
        if to.is_float:
            expr.value = float(expr.value)
        else:
            expr.value = int(expr.value)
        return expr
    cast = CastExpr(to=to.name, operand=expr, line=expr.line)
    cast.ctype = to
    return cast


class _Analyzer:
    def __init__(self, fn: FuncDef) -> None:
        self.fn = fn
        self.return_type = (
            None
            if fn.return_type == "void"
            else scalar_type_from_name(fn.return_type)
        )

    def run(self) -> None:
        scope = _Scope()
        for p in self.fn.params:
            if isinstance(p, ScalarParam):
                if p.type_name == "void":
                    raise SemaError("void parameter", p.line)
                scope.scalars[p.name] = scalar_type_from_name(p.type_name)
            elif isinstance(p, ArrayParam):
                for d in p.dims[1:]:
                    if not isinstance(d, int):
                        raise SemaError(
                            f"array {p.name}: inner dimensions must be "
                            "integer constants",
                            p.line,
                        )
                for d in p.dims:
                    if isinstance(d, str) and scope.lookup_scalar(d) is None:
                        raise SemaError(
                            f"array {p.name}: unknown extent {d!r} "
                            "(declare the scalar parameter first)",
                            p.line,
                        )
                scope.arrays[p.name] = ArrayInfo(
                    elem=scalar_type_from_name(p.elem_type),
                    dims=list(p.dims),
                    may_alias=p.may_alias,
                )
        self.block(self.fn.body, scope)

    # -- statements ---------------------------------------------------------

    def block(self, blk: BlockStmt, scope: _Scope) -> None:
        inner = _Scope(scope)
        for i, stmt in enumerate(blk.stmts):
            blk.stmts[i] = self.statement(stmt, inner)

    def statement(self, stmt, scope: _Scope):
        if isinstance(stmt, BlockStmt):
            self.block(stmt, scope)
        elif isinstance(stmt, DeclStmt):
            if scope.scalars.get(stmt.name) or scope.arrays.get(stmt.name):
                raise SemaError(f"redeclaration of {stmt.name!r}", stmt.line)
            t = scalar_type_from_name(stmt.type_name)
            if stmt.init is not None:
                stmt.init = _cast(self.expr(stmt.init, scope), t)
            scope.scalars[stmt.name] = t
        elif isinstance(stmt, AssignStmt):
            self.assign(stmt, scope)
        elif isinstance(stmt, ForStmt):
            self.for_stmt(stmt, scope)
        elif isinstance(stmt, IfStmt):
            stmt.cond = self.expr(stmt.cond, scope)
            if stmt.cond.ctype != BOOL:
                stmt.cond = _cast(stmt.cond, BOOL) if _is_flexible(stmt.cond) else stmt.cond
            self.block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self.block(stmt.else_body, scope)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                if self.return_type is None:
                    raise SemaError("void function returns a value", stmt.line)
                stmt.value = _cast(self.expr(stmt.value, scope), self.return_type)
            elif self.return_type is not None:
                raise SemaError("non-void function returns nothing", stmt.line)
        else:
            raise SemaError(f"unsupported statement {type(stmt).__name__}", stmt.line)
        return stmt

    def assign(self, stmt: AssignStmt, scope: _Scope) -> None:
        target = stmt.target
        if isinstance(target, VarExpr):
            t = scope.lookup_scalar(target.name)
            if t is None:
                raise SemaError(f"assignment to undeclared {target.name!r}", stmt.line)
            target.ctype = t
        elif isinstance(target, IndexExpr):
            self.index_expr(target, scope)
            t = target.ctype
        else:
            raise SemaError("bad assignment target", stmt.line)
        value = self.expr(stmt.value, scope)
        if stmt.op:
            # Desugar `x op= v` into `x = x op v` so lowering sees one form.
            lhs_copy: Expr
            if isinstance(target, VarExpr):
                lhs_copy = VarExpr(name=target.name, line=stmt.line)
                lhs_copy.ctype = t
            else:
                lhs_copy = IndexExpr(
                    name=target.name, indices=list(target.indices), line=stmt.line
                )
                lhs_copy.ctype = t
            combined = BinExpr(op=stmt.op, lhs=lhs_copy, rhs=value, line=stmt.line)
            value = self.bin_expr(combined, scope, pretyped=True)
            stmt.op = ""
        stmt.value = _cast(value, t)

    def for_stmt(self, stmt: ForStmt, scope: _Scope) -> None:
        stmt.lower = _cast(self.expr(stmt.lower, scope), I32)
        stmt.upper = _cast(self.expr(stmt.upper, scope), I32)
        if stmt.iv_decl_type is not None:
            if scalar_type_from_name(stmt.iv_decl_type) != I32:
                raise SemaError("loop variable must be int", stmt.line)
        else:
            existing = scope.lookup_scalar(stmt.iv)
            if existing is None:
                raise SemaError(f"undeclared loop variable {stmt.iv!r}", stmt.line)
            if existing != I32:
                raise SemaError("loop variable must be int", stmt.line)
        inner = _Scope(scope)
        inner.scalars[stmt.iv] = I32
        self.block(stmt.body, inner)

    # -- expressions -------------------------------------------------------

    def expr(self, e: Expr, scope: _Scope) -> Expr:
        if isinstance(e, NumLit):
            e.ctype = F32 if e.is_float else I32
            return e
        if isinstance(e, VarExpr):
            t = scope.lookup_scalar(e.name)
            if t is None:
                if scope.lookup_array(e.name) is not None:
                    raise SemaError(
                        f"array {e.name!r} used without subscript", e.line
                    )
                raise SemaError(f"undeclared identifier {e.name!r}", e.line)
            e.ctype = t
            return e
        if isinstance(e, IndexExpr):
            self.index_expr(e, scope)
            return e
        if isinstance(e, BinExpr):
            return self.bin_expr(e, scope)
        if isinstance(e, UnExpr):
            e.operand = self.expr(e.operand, scope)
            if e.op == "!":
                e.ctype = BOOL
            else:
                e.ctype = e.operand.ctype
            return e
        if isinstance(e, TernaryExpr):
            e.cond = self.expr(e.cond, scope)
            e.if_true = self.expr(e.if_true, scope)
            e.if_false = self.expr(e.if_false, scope)
            t = self._balance(e, "if_true", "if_false")
            e.ctype = t
            return e
        if isinstance(e, CallExpr):
            return self.call_expr(e, scope)
        if isinstance(e, CastExpr):
            e.operand = self.expr(e.operand, scope)
            to = scalar_type_from_name(e.to)
            if isinstance(e.operand, NumLit):
                # Fold casts of literals into retyped literals so the
                # vectorizer's idiom recognition sees plain constants.
                return _cast(e.operand, to)
            e.ctype = to
            return e
        raise SemaError(f"unsupported expression {type(e).__name__}", e.line)

    def _balance(self, node, a_attr: str, b_attr: str) -> ScalarType:
        a: Expr = getattr(node, a_attr)
        b: Expr = getattr(node, b_attr)
        if _is_flexible(a) and not _is_flexible(b):
            setattr(node, a_attr, _cast(a, b.ctype))
            return b.ctype
        if _is_flexible(b) and not _is_flexible(a):
            setattr(node, b_attr, _cast(b, a.ctype))
            return a.ctype
        t = _unify(a.ctype, b.ctype)
        setattr(node, a_attr, _cast(a, t))
        setattr(node, b_attr, _cast(b, t))
        return t

    def bin_expr(self, e: BinExpr, scope: _Scope, pretyped: bool = False) -> BinExpr:
        if not pretyped:
            e.lhs = self.expr(e.lhs, scope)
            e.rhs = self.expr(e.rhs, scope)
        else:
            if e.lhs.ctype is None:
                e.lhs = self.expr(e.lhs, scope)
            if e.rhs.ctype is None:
                e.rhs = self.expr(e.rhs, scope)
        if e.op in _LOGIC_OPS:
            e.ctype = BOOL
            return e
        if e.op in _CMP_OPS:
            self._balance(e, "lhs", "rhs")
            e.ctype = BOOL
            return e
        if e.op in ("<<", ">>"):
            if e.lhs.ctype.is_float:
                raise SemaError("shift of floating value", e.line)
            # Shift amounts take the shifted operand's type (the IR requires
            # homogeneous binary operands).
            e.rhs = _cast(e.rhs, e.lhs.ctype)
            e.ctype = e.lhs.ctype
            return e
        if e.op in ("&", "|", "^", "%") and (
            e.lhs.ctype.is_float or e.rhs.ctype.is_float
        ):
            raise SemaError(f"operator {e.op!r} on floating value", e.line)
        e.ctype = self._balance(e, "lhs", "rhs")
        return e

    def call_expr(self, e: CallExpr, scope: _Scope) -> CallExpr:
        e.args = [self.expr(a, scope) for a in e.args]
        if e.callee in ("abs", "fabs"):
            if len(e.args) != 1:
                raise SemaError(f"{e.callee} takes one argument", e.line)
            e.ctype = e.args[0].ctype
        elif e.callee in ("min", "max"):
            if len(e.args) != 2:
                raise SemaError(f"{e.callee} takes two arguments", e.line)
            t = _unify(e.args[0].ctype, e.args[1].ctype)
            if _is_flexible(e.args[0]) and not _is_flexible(e.args[1]):
                t = e.args[1].ctype
            elif _is_flexible(e.args[1]) and not _is_flexible(e.args[0]):
                t = e.args[0].ctype
            e.args = [_cast(a, t) for a in e.args]
            e.ctype = t
        elif e.callee == "sqrt":
            if len(e.args) != 1:
                raise SemaError("sqrt takes one argument", e.line)
            if not e.args[0].ctype.is_float:
                e.args[0] = _cast(e.args[0], F32)
            e.ctype = e.args[0].ctype
        else:
            raise SemaError(f"unknown function {e.callee!r}", e.line)
        return e

    def index_expr(self, e: IndexExpr, scope: _Scope) -> None:
        info = scope.lookup_array(e.name)
        if info is None:
            raise SemaError(f"subscript of non-array {e.name!r}", e.line)
        if len(e.indices) != len(info.dims):
            raise SemaError(
                f"array {e.name!r} has rank {len(info.dims)}, "
                f"subscripted with {len(e.indices)} indices",
                e.line,
            )
        e.indices = [_cast(self.expr(ix, scope), I32) for ix in e.indices]
        e.ctype = info.elem


def analyze(program: Program) -> Program:
    """Type-check and normalize every function in ``program`` in place."""
    seen = set()
    for fn in program.functions:
        if fn.name in seen:
            raise SemaError(f"duplicate function {fn.name!r}", fn.line)
        seen.add(fn.name)
        _Analyzer(fn).run()
    return program
