"""Token definitions for the VaporC kernel language.

VaporC is the C subset the paper's kernels are written in: typed function
definitions, counted ``for`` loops, array subscripts, scalar arithmetic,
``if``/``else`` and a few intrinsic-like builtins (``abs``, ``min``, ``max``).
It is what GCC's vectorizer would see after loop-nest normalization.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "TYPES", "PUNCT"]

#: Type keywords, mapped to IR scalar types by the semantic analyzer.
TYPES = ("void", "char", "short", "int", "long", "float", "double")

KEYWORDS = TYPES + ("for", "if", "else", "return", "__may_alias",)

#: Multi-character punctuation must precede its prefixes.
PUNCT = (
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
)


@dataclass(frozen=True)
class Token:
    """A lexical token.

    Attributes:
        kind: "ident", "int", "float", "punct", "kw", or "eof".
        text: the lexeme.
        line: 1-based source line, for diagnostics.
        col: 1-based source column.
    """

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"
