"""Recursive-descent parser for VaporC."""

from __future__ import annotations

from ..errors import ReproError
from .ast_nodes import (
    ArrayParam,
    AssignStmt,
    BinExpr,
    BlockStmt,
    CallExpr,
    CastExpr,
    DeclStmt,
    Expr,
    ForStmt,
    FuncDef,
    IfStmt,
    IndexExpr,
    NumLit,
    Program,
    ReturnStmt,
    ScalarParam,
    TernaryExpr,
    UnExpr,
    VarExpr,
)
from .lexer import tokenize
from .tokens import TYPES, Token

__all__ = ["parse", "ParseError"]

_BUILTINS = ("abs", "min", "max", "fabs", "sqrt")

# Binary operator precedence levels, loosest first.
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class ParseError(ReproError):
    """Raised on a syntax error, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at {token.line}:{token.col} (got {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in ("punct", "kw")

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise ParseError(f"expected {text!r}", self.cur)
        return self.advance()

    def expect_ident(self) -> str:
        if self.cur.kind != "ident":
            raise ParseError("expected identifier", self.cur)
        return self.advance().text

    def at_type(self) -> bool:
        return self.cur.kind == "kw" and self.cur.text in TYPES

    # -- grammar -------------------------------------------------------------

    def program(self) -> Program:
        functions = []
        while self.cur.kind != "eof":
            functions.append(self.func_def())
        return Program(functions=functions)

    def func_def(self) -> FuncDef:
        line = self.cur.line
        if not self.at_type():
            raise ParseError("expected return type", self.cur)
        ret = self.advance().text
        name = self.expect_ident()
        self.expect("(")
        params = []
        if not self.at(")"):
            params.append(self.param())
            while self.accept(","):
                params.append(self.param())
        self.expect(")")
        body = self.block()
        return FuncDef(return_type=ret, name=name, params=params, body=body, line=line)

    def param(self):
        line = self.cur.line
        may_alias = self.accept("__may_alias")
        if not self.at_type():
            raise ParseError("expected parameter type", self.cur)
        type_name = self.advance().text
        name = self.expect_ident()
        if self.at("["):
            dims = []
            while self.accept("["):
                if self.at("]"):
                    dims.append(None)
                elif self.cur.kind == "int":
                    dims.append(int(self.advance().text))
                else:
                    dims.append(self.expect_ident())
                self.expect("]")
            return ArrayParam(
                elem_type=type_name, name=name, dims=dims,
                may_alias=may_alias, line=line,
            )
        if may_alias:
            raise ParseError("__may_alias applies to array parameters", self.cur)
        return ScalarParam(type_name=type_name, name=name, line=line)

    def block(self) -> BlockStmt:
        line = self.cur.line
        self.expect("{")
        stmts = []
        while not self.at("}"):
            stmts.append(self.statement())
        self.expect("}")
        return BlockStmt(stmts=stmts, line=line)

    def statement(self):
        if self.at("{"):
            return self.block()
        if self.at("for"):
            return self.for_stmt()
        if self.at("if"):
            return self.if_stmt()
        if self.at("return"):
            line = self.advance().line
            value = None if self.at(";") else self.expr()
            self.expect(";")
            return ReturnStmt(value=value, line=line)
        if self.at_type():
            return self.decl_stmt()
        return self.assign_stmt()

    def decl_stmt(self) -> DeclStmt:
        line = self.cur.line
        type_name = self.advance().text
        name = self.expect_ident()
        init = None
        if self.accept("="):
            init = self.expr()
        self.expect(";")
        return DeclStmt(type_name=type_name, name=name, init=init, line=line)

    def assign_stmt(self) -> AssignStmt:
        line = self.cur.line
        target = self.postfix_expr()
        if not isinstance(target, (VarExpr, IndexExpr)):
            raise ParseError("assignment target must be variable or subscript", self.cur)
        if self.cur.kind == "punct" and self.cur.text.endswith("=") and self.cur.text not in ("==", "!=", "<=", ">="):
            op_text = self.advance().text
            op = op_text[:-1]  # "" for "=", "+" for "+=", "<<" for "<<="
        elif self.accept("++"):
            self.expect(";")
            return AssignStmt(
                target=target, op="+", value=NumLit(value=1, line=line), line=line
            )
        elif self.accept("--"):
            self.expect(";")
            return AssignStmt(
                target=target, op="-", value=NumLit(value=1, line=line), line=line
            )
        else:
            raise ParseError("expected assignment operator", self.cur)
        value = self.expr()
        self.expect(";")
        return AssignStmt(target=target, op=op, value=value, line=line)

    def for_stmt(self) -> ForStmt:
        line = self.expect("for").line
        self.expect("(")
        iv_decl_type = None
        if self.at_type():
            iv_decl_type = self.advance().text
        iv = self.expect_ident()
        self.expect("=")
        lower = self.expr()
        self.expect(";")
        cond_var = self.expect_ident()
        if cond_var != iv:
            raise ParseError(f"loop condition must test {iv!r}", self.cur)
        if self.accept("<"):
            inclusive = False
        elif self.accept("<="):
            inclusive = True
        else:
            raise ParseError("loop condition must be < or <=", self.cur)
        upper = self.expr()
        self.expect(";")
        step = self._loop_step(iv)
        self.expect(")")
        body = self.statement()
        if not isinstance(body, BlockStmt):
            body = BlockStmt(stmts=[body], line=body.line)
        return ForStmt(
            iv=iv, iv_decl_type=iv_decl_type, lower=lower, upper=upper,
            inclusive=inclusive, step=step, body=body, line=line,
        )

    def _loop_step(self, iv: str) -> int:
        step_var = self.expect_ident()
        if step_var != iv:
            raise ParseError(f"loop step must update {iv!r}", self.cur)
        if self.accept("++"):
            return 1
        if self.accept("+="):
            if self.cur.kind != "int":
                raise ParseError("loop step must be an integer constant", self.cur)
            return int(self.advance().text)
        if self.accept("="):
            # i = i + c
            base = self.expect_ident()
            if base != iv:
                raise ParseError("loop step must be iv + constant", self.cur)
            self.expect("+")
            if self.cur.kind != "int":
                raise ParseError("loop step must be an integer constant", self.cur)
            return int(self.advance().text)
        raise ParseError("unsupported loop step", self.cur)

    def if_stmt(self) -> IfStmt:
        line = self.expect("if").line
        self.expect("(")
        cond = self.expr()
        self.expect(")")
        then_body = self.statement()
        if not isinstance(then_body, BlockStmt):
            then_body = BlockStmt(stmts=[then_body], line=then_body.line)
        else_body = None
        if self.accept("else"):
            else_body = self.statement()
            if not isinstance(else_body, BlockStmt):
                else_body = BlockStmt(stmts=[else_body], line=else_body.line)
        return IfStmt(cond=cond, then_body=then_body, else_body=else_body, line=line)

    # -- expressions -------------------------------------------------------

    def expr(self) -> Expr:
        return self.ternary()

    def ternary(self) -> Expr:
        cond = self.binary(0)
        if self.accept("?"):
            if_true = self.expr()
            self.expect(":")
            if_false = self.ternary()
            return TernaryExpr(
                cond=cond, if_true=if_true, if_false=if_false, line=cond.line
            )
        return cond

    def binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self.unary()
        lhs = self.binary(level + 1)
        while self.cur.kind == "punct" and self.cur.text in _PRECEDENCE[level]:
            # Don't swallow `>` of a template-like context — not in VaporC;
            # but avoid treating `>=`-style compounds here (lexer handles).
            op = self.advance().text
            rhs = self.binary(level + 1)
            lhs = BinExpr(op=op, lhs=lhs, rhs=rhs, line=lhs.line)
        return lhs

    def unary(self) -> Expr:
        tok = self.cur
        if self.accept("-"):
            return UnExpr(op="-", operand=self.unary(), line=tok.line)
        if self.accept("!"):
            return UnExpr(op="!", operand=self.unary(), line=tok.line)
        if self.accept("~"):
            return UnExpr(op="~", operand=self.unary(), line=tok.line)
        if self.accept("+"):
            return self.unary()
        if self.at("(") and self.peek().kind == "kw" and self.peek().text in TYPES:
            self.expect("(")
            to = self.advance().text
            self.expect(")")
            return CastExpr(to=to, operand=self.unary(), line=tok.line)
        return self.postfix_expr()

    def postfix_expr(self) -> Expr:
        tok = self.cur
        if self.accept("("):
            inner = self.expr()
            self.expect(")")
            expr = inner
        elif tok.kind == "int":
            self.advance()
            expr = NumLit(value=int(tok.text), is_float=False, line=tok.line)
        elif tok.kind == "float":
            self.advance()
            expr = NumLit(value=float(tok.text), is_float=True, line=tok.line)
        elif tok.kind == "ident":
            name = self.advance().text
            if self.at("(") and name in _BUILTINS:
                self.expect("(")
                args = []
                if not self.at(")"):
                    args.append(self.expr())
                    while self.accept(","):
                        args.append(self.expr())
                self.expect(")")
                expr = CallExpr(callee=name, args=args, line=tok.line)
            else:
                expr = VarExpr(name=name, line=tok.line)
        else:
            raise ParseError("expected expression", tok)
        while self.at("["):
            if not isinstance(expr, (VarExpr, IndexExpr)):
                raise ParseError("subscript of non-array", self.cur)
            name = expr.name
            indices = expr.indices if isinstance(expr, IndexExpr) else []
            self.expect("[")
            indices = indices + [self.expr()]
            self.expect("]")
            expr = IndexExpr(name=name, indices=indices, line=tok.line)
        return expr


def parse(source: str) -> Program:
    """Parse VaporC source text into an AST."""
    return _Parser(tokenize(source)).program()
