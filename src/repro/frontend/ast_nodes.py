"""Abstract syntax tree for VaporC.

Nodes are plain dataclasses; the semantic analyzer decorates expressions
with their computed :class:`~repro.ir.types.ScalarType` in ``ctype``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.types import ScalarType

__all__ = [
    "Node",
    "Program",
    "FuncDef",
    "ScalarParam",
    "ArrayParam",
    "BlockStmt",
    "DeclStmt",
    "AssignStmt",
    "ForStmt",
    "IfStmt",
    "ReturnStmt",
    "Expr",
    "NumLit",
    "VarExpr",
    "IndexExpr",
    "BinExpr",
    "UnExpr",
    "TernaryExpr",
    "CallExpr",
    "CastExpr",
]


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions --------------------------------------------------------------


@dataclass
class Expr(Node):
    #: filled in by sema: the expression's scalar type.
    ctype: ScalarType | None = field(default=None, kw_only=True)


@dataclass
class NumLit(Expr):
    value: float | int = 0
    is_float: bool = False


@dataclass
class VarExpr(Expr):
    name: str = ""


@dataclass
class IndexExpr(Expr):
    """``array[i][j]...`` — ``indices`` has one entry per dimension."""

    name: str = ""
    indices: list[Expr] = field(default_factory=list)


@dataclass
class BinExpr(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class UnExpr(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class TernaryExpr(Expr):
    cond: Expr | None = None
    if_true: Expr | None = None
    if_false: Expr | None = None


@dataclass
class CallExpr(Expr):
    """Builtin call: abs, min, max (the only callables in VaporC)."""

    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    to: str = ""
    operand: Expr | None = None


# -- statements ---------------------------------------------------------------


@dataclass
class BlockStmt(Node):
    stmts: list[Node] = field(default_factory=list)


@dataclass
class DeclStmt(Node):
    """``float s = 0;`` — scalar local declaration with initializer."""

    type_name: str = ""
    name: str = ""
    init: Expr | None = None


@dataclass
class AssignStmt(Node):
    """``target op= value`` where target is a VarExpr or IndexExpr.

    ``op`` is "" for plain assignment or the compound operator base
    ("+", "-", "*", ...).
    """

    target: Expr | None = None
    op: str = ""
    value: Expr | None = None


@dataclass
class ForStmt(Node):
    """Normalized counted loop.

    Parsed from ``for (init; cond; step)``; the parser enforces the
    countable form: ``iv = lower``, ``iv < upper`` (or ``<=``), and
    ``iv++`` / ``iv += c``.
    """

    iv: str = ""
    iv_decl_type: str | None = None
    lower: Expr | None = None
    upper: Expr | None = None
    inclusive: bool = False
    step: int = 1
    body: BlockStmt | None = None


@dataclass
class IfStmt(Node):
    cond: Expr | None = None
    then_body: BlockStmt | None = None
    else_body: BlockStmt | None = None


@dataclass
class ReturnStmt(Node):
    value: Expr | None = None


# -- declarations -------------------------------------------------------------


@dataclass
class ScalarParam(Node):
    type_name: str = ""
    name: str = ""


@dataclass
class ArrayParam(Node):
    """``float a[n]`` / ``float A[128][128]`` / ``__may_alias float p[n]``.

    ``dims`` entries are int constants, parameter names, or None (``[]``,
    meaning an unknown extent usable only in the outermost dimension).
    """

    elem_type: str = ""
    name: str = ""
    dims: list = field(default_factory=list)
    may_alias: bool = False


@dataclass
class FuncDef(Node):
    return_type: str = "void"
    name: str = ""
    params: list = field(default_factory=list)
    body: BlockStmt | None = None


@dataclass
class Program(Node):
    functions: list[FuncDef] = field(default_factory=list)
