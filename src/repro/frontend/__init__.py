"""VaporC frontend: the C-subset kernel language and its lowering to IR.

The public entry point is :func:`compile_source`, which runs the full
lex → parse → analyze → lower pipeline and returns a verified IR module.
"""

from ..ir import Module, verify_function
from .ast_nodes import Program
from .lexer import LexError, tokenize
from .lower import lower_function, lower_program
from .parser import ParseError, parse
from .sema import SemaError, analyze

__all__ = [
    "compile_source",
    "tokenize",
    "parse",
    "analyze",
    "lower_program",
    "lower_function",
    "LexError",
    "ParseError",
    "SemaError",
]


def compile_source(source: str, name: str = "module") -> Module:
    """Compile VaporC source text into a verified scalar IR module."""
    program: Program = analyze(parse(source))
    module = lower_program(program, name)
    for fn in module:
        verify_function(fn)
    return module
