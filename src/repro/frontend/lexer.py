"""Hand-written lexer for VaporC."""

from __future__ import annotations

from ..errors import ReproError
from .tokens import KEYWORDS, PUNCT, Token

__all__ = ["tokenize", "LexError"]


class LexError(ReproError):
    """Raised on an unrecognized character or malformed literal."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at {line}:{col}")
        self.line = line
        self.col = col


def tokenize(source: str) -> list[Token]:
    """Tokenize VaporC source into a token list ending with an EOF token.

    Handles ``//`` line comments and ``/* */`` block comments.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_line, start_col = line, col
            is_float = False
            while i < n and source[i].isdigit():
                advance(1)
            if i < n and source[i] == ".":
                is_float = True
                advance(1)
                while i < n and source[i].isdigit():
                    advance(1)
            if i < n and source[i] in "eE":
                is_float = True
                advance(1)
                if i < n and source[i] in "+-":
                    advance(1)
                if i >= n or not source[i].isdigit():
                    raise LexError("malformed exponent", line, col)
                while i < n and source[i].isdigit():
                    advance(1)
            if i < n and source[i] in "fF":
                is_float = True
                advance(1)
            text = source[start:i].rstrip("fF")
            tokens.append(
                Token("float" if is_float else "int", text, start_line, start_col)
            )
            continue
        for p in PUNCT:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                advance(len(p))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
