"""The split-layer SIMD idioms — Table 1 of the Vapor SIMD paper.

These instructions form the abstraction layer between the offline and online
compilers.  They are "translatable to any SIMD platform ... as high-level and
generic as possible" while still carrying enough hints (misalignment, loop
bounds, version guards) for the online compiler to emit the best code for
each target *without re-running any loop-level analysis*.

Vector types are *symbolic* (``lanes is None``) in split bytecode: each
vector fills one VS-byte register and the lane count ``m = VS/sizeof(T)`` is
materialized by the JIT.  SLP-generated code instead uses *concrete* lane
counts equal to the superword group size; the JIT expands such ops into
``group/VF`` machine vectors (or scalarizes when ``VF`` does not divide the
group) — this is how a single bytecode serves targets of different VS.

Misalignment hints follow §III-B of the paper: the offline compiler computes
misalignment relative to ``mod`` = 32 bytes ("the largest SIMD width
available today"); ``mod == 0`` nulls the hint (the fall-back loop version).
"""

from __future__ import annotations

from .instructions import Instr
from .types import (
    BOOL,
    F32,
    I8,
    I32,
    ScalarType,
    VectorType,
    narrowed,
    widened,
)
from .values import ArrayRef, Value

__all__ = [
    "IdiomInstr",
    "GetVF",
    "GetAlignLimit",
    "InitUniform",
    "InitAffine",
    "InitReduc",
    "InitPattern",
    "Reduce",
    "DotProduct",
    "WidenMult",
    "Pack",
    "Unpack",
    "CvtIntFp",
    "Extract",
    "Interleave",
    "ALoad",
    "AlignLoad",
    "GetRT",
    "RealignLoad",
    "VStore",
    "LoopBound",
    "VersionGuard",
    "MOD_HINT",
]

#: The large modulo relative to which the offline compiler computes
#: misalignment ("currently set to 32 bytes, the largest SIMD width
#: available today" — §III-B.c; conveniently it still covers AVX).
MOD_HINT = 32


class IdiomInstr(Instr):
    """Base class for all Table 1 idioms (handy for isinstance checks).

    ``group`` links an idiom to the vectorized-loop group it belongs to
    (peel/main/epilogue trio); the online compiler materializes all idioms
    of a group consistently (vector mode vs scalar mode).
    """

    group: int | None = None


class GetVF(IdiomInstr):
    """``int get_VF(T)`` — number of T elements per vector register.

    Materialized by the online compiler to ``VS // sizeof(T)`` (or 1 when
    scalarizing).  Pointer increments and loop steps in the vectorized
    bytecode are expressed in terms of this value.
    """

    mnemonic = "get_VF"

    def __init__(self, elem: ScalarType, name: str = "") -> None:
        super().__init__(I32, [], name)
        self.elem = elem

    def attrs(self) -> dict:
        return {"elem": self.elem.name}


class GetAlignLimit(IdiomInstr):
    """``int get_align_limit(T)`` — alignment requirement in T elements."""

    mnemonic = "get_align_limit"

    def __init__(self, elem: ScalarType, name: str = "") -> None:
        super().__init__(I32, [], name)
        self.elem = elem

    def attrs(self) -> dict:
        return {"elem": self.elem.name}


class InitUniform(IdiomInstr):
    """``init_uniform(T, val)`` — a vector of m copies of ``val``."""

    mnemonic = "init_uniform"

    def __init__(self, vtype: VectorType, val: Value, name: str = "") -> None:
        super().__init__(vtype, [val], name)

    @property
    def val(self) -> Value:
        return self._operands[0]


class InitAffine(IdiomInstr):
    """``init_affine(T, val, inc)`` — (val, val+inc, ..., val+(m-1)inc)."""

    mnemonic = "init_affine"

    def __init__(
        self, vtype: VectorType, val: Value, inc: Value, name: str = ""
    ) -> None:
        super().__init__(vtype, [val, inc], name)

    @property
    def val(self) -> Value:
        return self._operands[0]

    @property
    def inc(self) -> Value:
        return self._operands[1]


class InitReduc(IdiomInstr):
    """``init_reduc(T, val, default)`` — (val, default, ..., default).

    ``default`` is the reduction identity (0 for plus, +/-inf for min/max)
    and is a compile-time constant so the encoder can store it inline.
    """

    mnemonic = "init_reduc"

    def __init__(
        self, vtype: VectorType, val: Value, default: float, name: str = ""
    ) -> None:
        super().__init__(vtype, [val], name)
        self.default = default

    @property
    def val(self) -> Value:
        return self._operands[0]

    def attrs(self) -> dict:
        return {"default": self.default}


class InitPattern(IdiomInstr):
    """``init_pattern(T, c0..c_{g-1})`` — periodic compile-time lane pattern.

    An extension of ``init_uniform`` for superword (SLP) code: the pattern of
    ``g`` constants is tiled across the register.  Only emitted under a
    ``slp_group`` version guard, which guarantees ``VF % g == 0`` so tiling
    is well defined on every target that executes the vector version.
    """

    mnemonic = "init_pattern"

    def __init__(self, vtype: VectorType, pattern: tuple, name: str = "") -> None:
        super().__init__(vtype, [], name)
        self.pattern = tuple(pattern)

    def attrs(self) -> dict:
        return {"pattern": self.pattern}


class Reduce(IdiomInstr):
    """``reduc_plus/max/min(T, v)`` — horizontal reduction to a scalar."""

    KINDS = ("plus", "max", "min")

    def __init__(self, kind: str, vec: Value, name: str = "") -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown reduction kind {kind!r}")
        vt = vec.type
        assert isinstance(vt, VectorType)
        super().__init__(vt.elem, [vec], name)
        self.kind = kind

    mnemonic = property(lambda self: "reduc_" + self.kind)  # type: ignore[assignment]

    @property
    def vec(self) -> Value:
        return self._operands[0]

    def attrs(self) -> dict:
        return {"kind": self.kind}


class DotProduct(IdiomInstr):
    """``dot_product(T, v1, v2, v3)``.

    Elementwise *widening* multiply of v1 and v2 (elements of type T),
    accumulated into v3 (elements of type widen(T)).  Matches e.g. SSE
    ``pmaddwd`` and is the key idiom for the sfir/interp s16 kernels.
    """

    mnemonic = "dot_product"

    def __init__(self, v1: Value, v2: Value, acc: Value, name: str = "") -> None:
        super().__init__(acc.type, [v1, v2, acc], name)

    @property
    def v1(self) -> Value:
        return self._operands[0]

    @property
    def v2(self) -> Value:
        return self._operands[1]

    @property
    def acc(self) -> Value:
        return self._operands[2]


class WidenMult(IdiomInstr):
    """``widen_mult_hi/lo(T, v1, v2)``.

    Widening multiply of the high/low halves of v1, v2; the result has m/2
    elements of type 2*sizeof(T).  Used by dissolve_s8.
    """

    mnemonic_base = "widen_mult"

    def __init__(self, half: str, v1: Value, v2: Value, name: str = "") -> None:
        if half not in ("hi", "lo"):
            raise ValueError("half must be 'hi' or 'lo'")
        vt = v1.type
        assert isinstance(vt, VectorType)
        lanes = None if vt.lanes is None else vt.lanes // 2
        super().__init__(VectorType(widened(vt.elem), lanes), [v1, v2], name)
        self.half = half

    mnemonic = property(lambda self: f"widen_mult_{self.half}")  # type: ignore[assignment]

    def attrs(self) -> dict:
        return {"half": self.half}


class Pack(IdiomInstr):
    """``pack(T, v1, v2)`` — demote 2m elements to half-width, one vector."""

    mnemonic = "pack"

    def __init__(self, v1: Value, v2: Value, name: str = "") -> None:
        vt = v1.type
        assert isinstance(vt, VectorType)
        lanes = None if vt.lanes is None else vt.lanes * 2
        super().__init__(VectorType(narrowed(vt.elem), lanes), [v1, v2], name)


class Unpack(IdiomInstr):
    """``unpack_hi/lo(T, v1)`` — promote the hi/lo half to double width."""

    def __init__(self, half: str, v1: Value, name: str = "") -> None:
        if half not in ("hi", "lo"):
            raise ValueError("half must be 'hi' or 'lo'")
        vt = v1.type
        assert isinstance(vt, VectorType)
        lanes = None if vt.lanes is None else vt.lanes // 2
        super().__init__(VectorType(widened(vt.elem), lanes), [v1], name)
        self.half = half

    mnemonic = property(lambda self: f"unpack_{self.half}")  # type: ignore[assignment]

    def attrs(self) -> dict:
        return {"half": self.half}


class CvtIntFp(IdiomInstr):
    """``cvt_int2fp/fp2int(T, v1)`` — same-width int<->float conversion."""

    def __init__(self, v1: Value, to: ScalarType, name: str = "") -> None:
        vt = v1.type
        assert isinstance(vt, VectorType)
        if to.size != vt.elem.size:
            raise ValueError("cvt_intfp requires same-width conversion")
        super().__init__(VectorType(to, vt.lanes), [v1], name)
        self.to = to

    mnemonic = property(  # type: ignore[assignment]
        lambda self: "cvt_int2fp" if self.to.is_float else "cvt_fp2int"
    )

    def attrs(self) -> dict:
        return {"to": self.to.name}


class Extract(IdiomInstr):
    """``extract(T, s, off, v1, v2, ...)``.

    Extract the elements at strided positions off, off+s, ..., off+(m-1)s
    from the concatenation of the input vectors.  This is how strided loads
    (e.g. the rate-2 ``interp`` kernels) are expressed: load s consecutive
    vectors, then extract each phase.
    """

    mnemonic = "extract"

    def __init__(
        self, stride: int, offset: int, vecs: list[Value], name: str = ""
    ) -> None:
        if len(vecs) != stride:
            raise ValueError("extract needs exactly `stride` input vectors")
        super().__init__(vecs[0].type, list(vecs), name)
        self.stride = stride
        self.offset = offset

    def attrs(self) -> dict:
        return {"stride": self.stride, "offset": self.offset}


class Interleave(IdiomInstr):
    """``interleave_hi/lo(T, v1, v2)`` — interleave hi/lo halves.

    The inverse of :class:`Extract` for stride 2; used for strided stores.
    """

    def __init__(self, half: str, v1: Value, v2: Value, name: str = "") -> None:
        if half not in ("hi", "lo"):
            raise ValueError("half must be 'hi' or 'lo'")
        super().__init__(v1.type, [v1, v2], name)
        self.half = half

    mnemonic = property(lambda self: f"interleave_{self.half}")  # type: ignore[assignment]

    def attrs(self) -> dict:
        return {"half": self.half}


class _VMemIdiom(IdiomInstr):
    """Shared shape for vector memory idioms.

    ``index`` is the *linearized element index* of the first lane (the
    vectorizer emits the row-major linearization arithmetic for multi-dim
    arrays as ordinary scalar IR).
    """

    def __init__(
        self,
        result_type,
        array: ArrayRef,
        index: Value,
        extra: list[Value],
        name: str = "",
    ) -> None:
        super().__init__(result_type, [array, index, *extra], name)

    @property
    def array(self) -> ArrayRef:
        return self._operands[0]  # type: ignore[return-value]

    @property
    def index(self) -> Value:
        return self._operands[1]

    @property
    def extra(self) -> list[Value]:
        return self._operands[2:]


class ALoad(_VMemIdiom):
    """``aload(addr)`` — aligned vector load; address guaranteed aligned."""

    mnemonic = "aload"

    def __init__(
        self,
        vtype: VectorType,
        array: ArrayRef,
        index: Value,
        name: str = "",
    ) -> None:
        super().__init__(vtype, array, index, [], name)


class AlignLoad(_VMemIdiom):
    """``align_load(addr)`` — load from floor(addr / VS) * VS.

    Only meaningful together with :class:`RealignLoad`; targets without
    explicit realignment generate *no code* for it (§III-C.b).
    """

    mnemonic = "align_load"

    def __init__(
        self,
        vtype: VectorType,
        array: ArrayRef,
        index: Value,
        name: str = "",
    ) -> None:
        super().__init__(vtype, array, index, [], name)


class GetRT(_VMemIdiom):
    """``get_rt(addr, mis, mod)`` — compute a realignment token.

    On AltiVec this maps to ``lvsr``-style permute-vector computation; on
    targets with misaligned loads it generates no code.  The token is typed
    as a byte vector.
    """

    mnemonic = "get_rt"

    def __init__(
        self,
        array: ArrayRef,
        index: Value,
        mis: int,
        mod: int,
        name: str = "",
    ) -> None:
        super().__init__(VectorType(I8, None), array, index, [], name)
        self.mis = mis
        self.mod = mod

    def attrs(self) -> dict:
        return {"mis": self.mis, "mod": self.mod}


class RealignLoad(_VMemIdiom):
    """``realign_load(v1, v2, rt, addr, mis, mod)`` — §III-C's chameleon.

    The central idiom of the split layer.  Depending on the target, the
    online compiler lowers it to:

    * explicit realignment: extract VF elements from ``v1:v2`` using ``rt``
      (AltiVec ``vperm``), ignoring ``addr``;
    * implicit realignment: one misaligned load from ``addr`` (SSE
      ``movdqu``), ignoring ``v1, v2, rt``;
    * an aligned load from ``addr`` when ``mod != 0 and mis % VS == 0``;
    * a scalar load from ``addr`` when scalarizing.

    ``v1``/``v2``/``rt`` are optional (None) in the fall-back loop versions
    that carry no realignment chain; such loads can only lower to the
    implicit/aligned/scalar schemes.  ``mod == 0`` nulls the hints.
    """

    mnemonic = "realign_load"

    def __init__(
        self,
        vtype: VectorType,
        array: ArrayRef,
        index: Value,
        v1: Value | None,
        v2: Value | None,
        rt: Value | None,
        mis: int,
        mod: int,
        name: str = "",
    ) -> None:
        extra = [v for v in (v1, v2, rt) if v is not None]
        if extra and len(extra) != 3:
            raise ValueError("realign_load takes all of v1, v2, rt or none")
        super().__init__(vtype, array, index, extra, name)
        self.mis = mis
        self.mod = mod
        self.has_chain = bool(extra)
        #: bytes the stream advances per *original scalar* iteration; lets
        #: the online compiler compute post-peel misalignment.
        self.step_bytes = vtype.elem.size

    @property
    def v1(self) -> Value | None:
        return self.extra[0] if self.has_chain else None

    @property
    def v2(self) -> Value | None:
        return self.extra[1] if self.has_chain else None

    @property
    def rt(self) -> Value | None:
        return self.extra[2] if self.has_chain else None

    def attrs(self) -> dict:
        return {
            "mis": self.mis,
            "mod": self.mod,
            "has_chain": self.has_chain,
            "step_bytes": self.step_bytes,
        }


class VStore(_VMemIdiom):
    """Vector store with misalignment hints.

    Table 1 of the paper lists only loads; stores follow the same hint
    scheme.  The vectorizer peels loops so that main-loop stores are aligned
    *conditionally on base alignment* (guarded by ``version_guard``); targets
    that require aligned stores (AltiVec) execute the aligned version, others
    may use misaligned stores.
    """

    mnemonic = "vstore"

    def __init__(
        self,
        array: ArrayRef,
        index: Value,
        value: Value,
        mis: int,
        mod: int,
        name: str = "",
    ) -> None:
        super().__init__(value.type, array, index, [value], name)
        self.mis = mis
        self.mod = mod
        #: True when loop peeling guarantees this store is aligned provided
        #: the array base is (the peel target stream, SIII-B.c).
        self.aligned_by_peel = False
        self.step_bytes = value.type.elem.size if hasattr(value.type, "elem") else 0

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def value(self) -> Value:
        return self.extra[0]

    def attrs(self) -> dict:
        return {
            "mis": self.mis,
            "mod": self.mod,
            "aligned_by_peel": self.aligned_by_peel,
            "step_bytes": self.step_bytes,
        }


class LoopBound(IdiomInstr):
    """``loop_bound(vect_bound, scalar_bound)`` (§III-B.c).

    The online compiler materializes this to ``vect_bound`` when emitting
    vector code and to ``scalar_bound`` when scalarizing — so that a peeled
    3-loop structure collapses back to a single scalar loop on non-SIMD
    targets instead of degrading performance.
    """

    mnemonic = "loop_bound"

    def __init__(self, vect: Value, scalar: Value, name: str = "") -> None:
        super().__init__(I32, [vect, scalar], name)

    @property
    def vect(self) -> Value:
        return self._operands[0]

    @property
    def scalar(self) -> Value:
        return self._operands[1]


class VersionGuard(IdiomInstr):
    """``version_guard_COND()`` — selects among loop versions (§III-B.d).

    Guard kinds and their resolution by the online compiler:

    * ``bases_aligned`` — true iff the JIT can guarantee every operand
      array's base is VS-aligned (JITs controlling allocation fold this to
      a constant; others emit a runtime base-mask check).
    * ``no_alias`` — true iff the operand arrays do not overlap; folds to
      true for distinct non-aliasing arrays, otherwise a runtime check.
    * ``vf_le`` — true iff VF <= ``bound`` (dependence-distance hint,
      §III-B.b); always folded at JIT time.
    * ``prefer_outer`` — inner- vs outer-loop vectorization choice; folded
      from the target's support for the element types in ``attrs``.
    * ``slp_group`` — true iff VF divides the superword group size
      ``group``; always folded.
    * ``has_idiom`` — true iff the target supports the named idiom for the
      named element type.
    """

    KINDS = (
        "bases_aligned",
        "no_alias",
        "vf_le",
        "prefer_outer",
        "slp_group",
        "has_idiom",
    )

    mnemonic = "version_guard"

    def __init__(
        self, kind: str, operands: list[Value], params: dict, name: str = ""
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown guard kind {kind!r}")
        super().__init__(BOOL, operands, name)
        self.kind = kind
        self.params = dict(params)

    def attrs(self) -> dict:
        return {"kind": self.kind, **self.params}
