"""Generic IR traversal and cloning utilities.

The vectorizer and the optimization passes both need to (a) walk every
instruction in a nested region tree and (b) clone blocks while remapping
values — e.g. when the vectorizer creates peel/main/epilogue copies of a
loop, or when loop versioning duplicates a whole nest.
"""

from __future__ import annotations

import copy as _copy
from collections.abc import Iterator

from . import values as _values
from .instructions import Instr
from .structure import Block, ForLoop, If, IfResult, LoopResult
from .values import BlockArg, Value

__all__ = ["walk", "walk_blocks", "clone_block", "clone_instr", "clone_function", "uses_in"]


def walk(block: Block) -> Iterator[Instr]:
    """Yield every instruction in ``block`` and nested regions, pre-order."""
    for instr in block.instrs:
        yield instr
        if isinstance(instr, ForLoop):
            yield from walk(instr.body)
        elif isinstance(instr, If):
            yield from walk(instr.then_block)
            yield from walk(instr.else_block)


def walk_blocks(block: Block) -> Iterator[Block]:
    """Yield ``block`` and every nested block, pre-order."""
    yield block
    for instr in block.instrs:
        if isinstance(instr, ForLoop):
            yield from walk_blocks(instr.body)
        elif isinstance(instr, If):
            yield from walk_blocks(instr.then_block)
            yield from walk_blocks(instr.else_block)


def clone_instr(instr: Instr, vmap: dict[Value, Value]) -> Instr:
    """Clone one instruction, remapping operands through ``vmap``.

    Nested regions (loops/ifs) are cloned recursively; the clone's block
    arguments and results are entered into ``vmap`` so later uses remap.
    The original instruction is also mapped to its clone.
    """
    new = _copy.copy(instr)
    new._operands = [vmap.get(op, op) for op in instr.operands]
    new.id = next(_values._ids)
    if isinstance(instr, ForLoop):
        assert isinstance(new, ForLoop)
        new.body = Block()
        new.annotations = dict(instr.annotations)
        for arg in instr.body.args:
            narg = BlockArg(arg.name, arg.type, arg.index)
            new.body.args.append(narg)
            vmap[arg] = narg
        new.results = [LoopResult(new, r.index, r.type) for r in instr.results]
        for old_r, new_r in zip(instr.results, new.results):
            vmap[old_r] = new_r
        _clone_into(instr.body, new.body, vmap)
    elif isinstance(instr, If):
        assert isinstance(new, If)
        new.then_block = Block()
        new.else_block = Block()
        new.results = [IfResult(new, r.index, r.type) for r in instr.results]
        for old_r, new_r in zip(instr.results, new.results):
            vmap[old_r] = new_r
        _clone_into(instr.then_block, new.then_block, vmap)
        _clone_into(instr.else_block, new.else_block, vmap)
    vmap[instr] = new
    return new


def _clone_into(src: Block, dst: Block, vmap: dict[Value, Value]) -> None:
    for instr in src.instrs:
        dst.append(clone_instr(instr, vmap))


def clone_block(block: Block, vmap: dict[Value, Value]) -> Block:
    """Clone a block's instructions (not its args), remapping via ``vmap``."""
    out = Block()
    _clone_into(block, out, vmap)
    return out


def clone_function(fn, form: str | None = None):
    """Deep-clone a function (sharing parameters, which are SSA leaves)."""
    from .structure import Function

    out = Function(fn.name, fn.scalar_params, fn.array_params, fn.return_type)
    out.body = clone_block(fn.body, {})
    out.form = form if form is not None else fn.form
    out.annotations = dict(fn.annotations)
    return out


def uses_in(block: Block) -> dict[Value, list[Instr]]:
    """Map each value to the instructions (anywhere under ``block``) using it."""
    uses: dict[Value, list[Instr]] = {}
    for instr in walk(block):
        for op in instr.operands:
            uses.setdefault(op, []).append(instr)
    return uses
