"""Textual IR printer.

Produces a readable, stable rendering used by tests, debugging, and the
examples (the run-everywhere example prints the vectorized bytecode the way
Figure 3 of the paper does).
"""

from __future__ import annotations

from .instructions import Instr
from .structure import Block, ForLoop, Function, If, Module, Return, Yield
from .values import ArrayRef, Const, Value

__all__ = ["print_function", "print_module", "print_block"]


class _Namer:
    def __init__(self) -> None:
        self.names: dict[int, str] = {}
        self.counter = 0

    def name(self, v: Value) -> str:
        if isinstance(v, Const):
            return repr(v.value)
        if isinstance(v, ArrayRef):
            return f"@{v.name}"
        if v.id not in self.names:
            base = v.name or "v"
            self.names[v.id] = f"%{base}{self.counter}"
            self.counter += 1
        return self.names[v.id]


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f" {{{inner}}}"


def _print_instr(instr: Instr, namer: _Namer, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(instr, ForLoop):
        inits = ", ".join(
            f"{namer.name(c)} = {namer.name(i)}"
            for c, i in zip(instr.carried, instr.init_values)
        )
        head = (
            f"{pad}for {namer.name(instr.iv)} in [{namer.name(instr.lower)}, "
            f"{namer.name(instr.upper)}) step {namer.name(instr.step)}"
        )
        if inits:
            head += f" carrying ({inits})"
        head += f" kind={instr.kind} {{"
        out.append(head)
        _print_block(instr.body, namer, indent + 1, out)
        out.append(f"{pad}}}")
        for r in instr.results:
            out.append(f"{pad}# {namer.name(r)} = result {r.index}")
    elif isinstance(instr, If):
        out.append(f"{pad}if {namer.name(instr.cond)} {{")
        _print_block(instr.then_block, namer, indent + 1, out)
        if instr.else_block.instrs:
            out.append(f"{pad}}} else {{")
            _print_block(instr.else_block, namer, indent + 1, out)
        out.append(f"{pad}}}")
        for r in instr.results:
            out.append(f"{pad}# {namer.name(r)} = if-result {r.index}")
    elif isinstance(instr, Yield):
        vals = ", ".join(namer.name(v) for v in instr.values)
        out.append(f"{pad}yield {vals}")
    elif isinstance(instr, Return):
        v = f" {namer.name(instr.value)}" if instr.value is not None else ""
        out.append(f"{pad}return{v}")
    else:
        ops = ", ".join(namer.name(o) for o in instr.operands)
        out.append(
            f"{pad}{namer.name(instr)}: {instr.type} = "
            f"{instr.mnemonic}({ops}){_fmt_attrs(instr.attrs())}"
        )


def _print_block(block: Block, namer: _Namer, indent: int, out: list[str]) -> None:
    for instr in block.instrs:
        _print_instr(instr, namer, indent, out)


def print_block(block: Block) -> str:
    """Render one block (used for loop-body snippets in tests/docs)."""
    namer = _Namer()
    out: list[str] = []
    _print_block(block, namer, 0, out)
    return "\n".join(out)


def print_function(fn: Function) -> str:
    """Render a whole function with its signature and form."""
    namer = _Namer()
    out: list[str] = []
    scalars = ", ".join(f"{namer.name(p)}: {p.type}" for p in fn.scalar_params)
    arrays = ", ".join(
        f"@{a.name}: {a.elem}"
        + "".join(
            f"[{e if isinstance(e, int) else namer.name(e)}]" for e in a.shape
        )
        for a in fn.array_params
    )
    ret = f" -> {fn.return_type}" if fn.return_type else ""
    sig = "; ".join(s for s in (scalars, arrays) if s)
    out.append(f"func {fn.name}({sig}){ret} form={fn.form} {{")
    _print_block(fn.body, namer, 1, out)
    out.append("}")
    return "\n".join(out)


def print_module(module: Module) -> str:
    """Render every function of a module."""
    return "\n\n".join(print_function(fn) for fn in module)
