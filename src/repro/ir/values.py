"""Value hierarchy for the Vapor IR.

Every operand in the IR is a :class:`Value`.  Instructions (defined in
:mod:`repro.ir.instructions`) are themselves values, LLVM-style, so the IR is
SSA: each value has exactly one definition.  Loop-carried state is expressed
with block arguments on structured loops (see :mod:`repro.ir.structure`)
rather than phi nodes.
"""

from __future__ import annotations

import itertools

from .types import BOOL, F32, F64, I32, ScalarType, Type, VectorType

__all__ = ["Value", "Const", "Argument", "ArrayRef", "BlockArg"]

_ids = itertools.count()


class Value:
    """Base class for all IR values.

    Attributes:
        type: the :class:`~repro.ir.types.Type` of the value.
        name: an optional printer hint; uniqued by the printer.
    """

    def __init__(self, type: Type, name: str = "") -> None:
        self.type = type
        self.name = name
        self.id = next(_ids)

    @property
    def is_vector(self) -> bool:
        return isinstance(self.type, VectorType)

    def short(self) -> str:
        return f"%{self.name or self.id}"

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.short()}: {self.type})"


class Const(Value):
    """A compile-time scalar constant."""

    def __init__(self, value: float, type: ScalarType) -> None:
        super().__init__(type)
        if type.is_float:
            self.value: float | int = float(value)
        else:
            self.value = int(value)

    def short(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Const({self.value}: {self.type})"


def const_for(value: float, type: ScalarType) -> Const:
    """Convenience constructor used throughout the compiler."""
    return Const(value, type)


class Argument(Value):
    """A scalar function parameter (e.g. the loop trip count ``n``)."""

    def __init__(self, name: str, type: ScalarType) -> None:
        super().__init__(type, name)


class ArrayRef(Value):
    """An array function parameter or local/global array.

    Arrays carry their element type and shape.  Extents may be symbolic
    (an :class:`Argument`) only in the outermost dimension; inner dimensions
    must be constant so that subscripts linearize to affine expressions, the
    form the dependence and alignment analyses understand.

    Attributes:
        elem: element scalar type.
        shape: tuple of extents (int or Argument).
        may_alias: if True the offline compiler must assume this array can
            overlap others, forcing runtime alias versioning.
        base_align: guaranteed alignment (bytes) of the array base at run
            time, as known to the *offline* compiler.  The split flow sets
            this to the element size (nothing guaranteed — the JIT may or may
            not be able to align arrays); the native flow sets it to the
            target's vector size, matching GCC forcing alignment of
            global/local arrays.
    """

    def __init__(
        self,
        name: str,
        elem: ScalarType,
        shape: tuple,
        may_alias: bool = False,
        base_align: int | None = None,
    ) -> None:
        super().__init__(elem, name)
        self.elem = elem
        self.shape = tuple(shape)
        self.may_alias = may_alias
        self.base_align = base_align if base_align is not None else elem.size
        for extent in self.shape[1:]:
            if not isinstance(extent, int):
                raise ValueError(
                    f"array {name}: only the outermost extent may be symbolic"
                )

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def row_elems(self) -> int:
        """Number of elements in one row of the innermost dimensions.

        For a rank-1 array this is 1 (the stride of the only subscript).
        """
        n = 1
        for extent in self.shape[1:]:
            n *= extent
        return n

    def static_elem_count(self) -> int | None:
        """Total element count, or None if the outer extent is symbolic."""
        if self.shape and not isinstance(self.shape[0], int):
            return None
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        dims = "x".join(
            str(e) if isinstance(e, int) else e.name for e in self.shape
        )
        return f"ArrayRef(@{self.name}: {self.elem}[{dims}])"


class BlockArg(Value):
    """An argument of a structured block.

    The first argument of a loop body is the induction variable; the rest are
    the loop-carried values (``iter_args``).
    """

    def __init__(self, name: str, type: Type, index: int) -> None:
        super().__init__(type, name)
        self.index = index


# Handy shared constants.
ZERO_I32 = Const(0, I32)
ONE_I32 = Const(1, I32)
TRUE = Const(1, BOOL)
FALSE = Const(0, BOOL)
ZERO_F32 = Const(0.0, F32)
ZERO_F64 = Const(0.0, F64)
