"""IR verifier.

Checks structural and type invariants after the frontend and after each
transformation.  Both compilers run it in debug flows, and the test suite
runs it on every kernel before and after vectorization.
"""

from __future__ import annotations

from ..errors import ReproError
from .idioms import DotProduct, RealignLoad, VStore
from .instructions import BinOp, Cmp, Convert, Instr, Load, Select, Store
from .structure import Block, ForLoop, Function, If, Return, Yield
from .types import I32, VectorType, widened
from .values import ArrayRef, BlockArg, Const, Value

__all__ = ["verify_function", "VerificationError"]


class VerificationError(ReproError):
    """Raised when the IR violates an invariant."""


def verify_function(fn: Function) -> None:
    """Verify ``fn``; raises :class:`VerificationError` on the first issue.

    Invariants checked:

    * every operand is defined before use (params, block args of enclosing
      blocks, constants, or an earlier instruction in scope);
    * loops yield exactly their carried values, with matching types;
    * binary/compare operand types match;
    * memory ops index arrays with the right rank and scalar indices;
    * widening idioms have consistent element types.
    """
    defined: set[int] = set()
    for p in fn.params:
        defined.add(p.id)
    _verify_block(fn.body, defined, fn)
    term = fn.body.terminator
    if fn.return_type is not None and not isinstance(term, Return):
        raise VerificationError(f"{fn.name}: missing return")


def _define(value: Value, defined: set[int]) -> None:
    defined.add(value.id)


def _check_use(value: Value, defined: set[int], ctx: str) -> None:
    if isinstance(value, (Const, ArrayRef)):
        return
    if value.id not in defined:
        raise VerificationError(f"use of undefined value {value!r} in {ctx}")


def _verify_block(block: Block, defined: set[int], fn: Function) -> None:
    local = set(defined)
    for arg in block.args:
        _define(arg, local)
    for instr in block.instrs:
        for op in instr.operands:
            _check_use(op, local, repr(instr))
        _verify_instr(instr, local, fn)
        _define(instr, local)
        if isinstance(instr, ForLoop):
            for r in instr.results:
                _define(r, local)
        elif isinstance(instr, If):
            for r in instr.results:
                _define(r, local)


def _verify_instr(instr: Instr, defined: set[int], fn: Function) -> None:
    if isinstance(instr, ForLoop):
        if not all(op.type == I32 for op in (instr.lower, instr.upper, instr.step)):
            raise VerificationError(f"loop bounds/step must be i32: {instr!r}")
        if len(instr.carried) != len(instr.init_values):
            raise VerificationError(f"carried/init mismatch: {instr!r}")
        for carry, init in zip(instr.carried, instr.init_values):
            if carry.type != init.type:
                raise VerificationError(
                    f"carried {carry!r} type != init {init!r} type"
                )
        _verify_block(instr.body, defined, fn)
        term = instr.body.terminator
        if not isinstance(term, Yield):
            raise VerificationError(f"loop body must end in yield: {instr!r}")
        if len(term.values) != len(instr.carried):
            raise VerificationError(f"yield arity mismatch in {instr!r}")
        for y, carry in zip(term.values, instr.carried):
            if y.type != carry.type:
                raise VerificationError(
                    f"yield type {y.type} != carried type {carry.type} in {instr!r}"
                )
    elif isinstance(instr, If):
        if instr.cond.type.name not in ("bool", "i32"):
            raise VerificationError(f"if condition must be bool/i32: {instr!r}")
        _verify_block(instr.then_block, defined, fn)
        _verify_block(instr.else_block, defined, fn)
        if instr.results:
            for blk in (instr.then_block, instr.else_block):
                term = blk.terminator
                if not isinstance(term, Yield) or len(term.values) != len(
                    instr.results
                ):
                    raise VerificationError(f"if-arm yield mismatch: {instr!r}")
    elif isinstance(instr, (BinOp, Cmp)):
        if instr.lhs.type != instr.rhs.type:
            raise VerificationError(
                f"operand type mismatch {instr.lhs.type} vs {instr.rhs.type} "
                f"in {instr!r}"
            )
    elif isinstance(instr, Select):
        if instr.if_true.type != instr.if_false.type:
            raise VerificationError(f"select arm type mismatch in {instr!r}")
    elif isinstance(instr, (Load, Store)):
        for idx in instr.indices:
            if idx.type != I32:
                raise VerificationError(f"non-i32 index in {instr!r}")
    elif isinstance(instr, DotProduct):
        v1t, acct = instr.v1.type, instr.acc.type
        if not (isinstance(v1t, VectorType) and isinstance(acct, VectorType)):
            raise VerificationError(f"dot_product needs vector operands: {instr!r}")
        if widened(v1t.elem) != acct.elem:
            raise VerificationError(
                f"dot_product accumulator must be widened: {instr!r}"
            )
    elif isinstance(instr, (RealignLoad, VStore)):
        if instr.mod and instr.mis >= instr.mod:
            raise VerificationError(f"mis >= mod hint in {instr!r}")
