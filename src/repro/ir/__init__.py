"""Typed, structured intermediate representation shared by both compilation
stages of the split-vectorization pipeline.

The scalar subset (arithmetic, loads/stores, counted loops with iteration
arguments) is what the frontend produces; the vector subset adds the
Table 1 split-layer idioms of the Vapor SIMD paper (:mod:`repro.ir.idioms`).
"""

from .builder import IRBuilder
from .idioms import (
    MOD_HINT,
    ALoad,
    AlignLoad,
    CvtIntFp,
    DotProduct,
    Extract,
    GetAlignLimit,
    GetRT,
    GetVF,
    IdiomInstr,
    InitAffine,
    InitPattern,
    InitReduc,
    InitUniform,
    Interleave,
    LoopBound,
    Pack,
    RealignLoad,
    Reduce,
    Unpack,
    VersionGuard,
    VStore,
    WidenMult,
)
from .instructions import (
    BINARY_OPS,
    CMP_OPS,
    COMMUTATIVE_OPS,
    UNARY_OPS,
    BinOp,
    Cmp,
    Convert,
    Instr,
    Load,
    Select,
    Store,
    UnOp,
)
from .printer import print_block, print_function, print_module
from .structure import (
    Block,
    ForLoop,
    Function,
    If,
    IfResult,
    LoopResult,
    Module,
    Return,
    Yield,
)
from .traversal import clone_block, clone_function, clone_instr, uses_in, walk, walk_blocks
from .types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    SCALAR_TYPES,
    ScalarType,
    Type,
    VectorType,
    narrowed,
    scalar_type_from_name,
    widened,
)
from .values import Argument, ArrayRef, BlockArg, Const, Value
from .verifier import VerificationError, verify_function

__all__ = [
    # types
    "ScalarType", "VectorType", "Type", "I8", "I16", "I32", "I64", "F32",
    "F64", "BOOL", "SCALAR_TYPES", "widened", "narrowed",
    "scalar_type_from_name",
    # values
    "Value", "Const", "Argument", "ArrayRef", "BlockArg",
    # instructions
    "Instr", "BinOp", "UnOp", "Cmp", "Select", "Convert", "Load", "Store",
    "BINARY_OPS", "UNARY_OPS", "CMP_OPS", "COMMUTATIVE_OPS",
    # idioms
    "IdiomInstr", "GetVF", "GetAlignLimit", "InitUniform", "InitAffine",
    "InitReduc", "InitPattern", "Reduce", "DotProduct", "WidenMult", "Pack", "Unpack",
    "CvtIntFp", "Extract", "Interleave", "ALoad", "AlignLoad", "GetRT",
    "RealignLoad", "VStore", "LoopBound", "VersionGuard", "MOD_HINT",
    # structure
    "Block", "Yield", "ForLoop", "LoopResult", "If", "IfResult", "Return",
    "Function", "Module",
    # utilities
    "IRBuilder", "walk", "walk_blocks", "clone_block", "clone_instr", "clone_function",
    "uses_in", "print_function", "print_module", "print_block",
    "verify_function", "VerificationError",
]
