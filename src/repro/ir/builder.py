"""Convenience builder for constructing IR, used by the frontend, the
vectorizer's code generation, and tests."""

from __future__ import annotations

from .instructions import BinOp, Cmp, Convert, Load, Select, Store, UnOp
from .structure import Block, ForLoop, If, Return, Yield
from .types import I32, ScalarType, Type
from .values import ArrayRef, Const, Value

__all__ = ["IRBuilder"]


class IRBuilder:
    """Appends instructions to a current block; supports nesting helpers."""

    def __init__(self, block: Block | None = None) -> None:
        self.block = block
        self._stack: list[Block] = []

    # -- insertion point management ------------------------------------

    def set_block(self, block: Block) -> None:
        self.block = block

    def push(self, block: Block) -> None:
        self._stack.append(self.block)
        self.block = block

    def pop(self) -> None:
        self.block = self._stack.pop()

    def emit(self, instr):
        """Append any pre-built instruction and return it."""
        assert self.block is not None, "no insertion block set"
        return self.block.append(instr)

    # -- constants -------------------------------------------------------

    def const(self, value, type: ScalarType = I32) -> Const:
        return Const(value, type)

    # -- arithmetic -------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.emit(BinOp(op, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def div(self, lhs, rhs, name=""):
        return self.binop("div", lhs, rhs, name)

    def mod(self, lhs, rhs, name=""):
        return self.binop("mod", lhs, rhs, name)

    def min(self, lhs, rhs, name=""):
        return self.binop("min", lhs, rhs, name)

    def max(self, lhs, rhs, name=""):
        return self.binop("max", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def shr(self, lhs, rhs, name=""):
        return self.binop("shr", lhs, rhs, name)

    def neg(self, value, name=""):
        return self.emit(UnOp("neg", value, name))

    def abs(self, value, name=""):
        return self.emit(UnOp("abs", value, name))

    def cmp(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.emit(Cmp(op, lhs, rhs, name))

    def select(self, cond, if_true, if_false, name=""):
        return self.emit(Select(cond, if_true, if_false, name))

    def convert(self, value: Value, to: ScalarType, name: str = "") -> Value:
        if value.type == to:
            return value
        return self.emit(Convert(value, to, name))

    # -- memory -------------------------------------------------------

    def load(self, array: ArrayRef, indices: list[Value], name: str = "") -> Value:
        return self.emit(Load(array, list(indices), name))

    def store(self, array: ArrayRef, indices: list[Value], value: Value) -> Value:
        return self.emit(Store(array, list(indices), value))

    # -- control flow ------------------------------------------------------

    def for_loop(
        self,
        lower: Value,
        upper: Value,
        step: Value | int = 1,
        init_values: list[Value] | None = None,
        iv_name: str = "i",
        kind: str = "scalar",
    ) -> ForLoop:
        """Create a ForLoop, append it, and return it (body still empty).

        Use ``push(loop.body)`` / ``pop()`` to populate the body, then call
        :meth:`end_loop` with the values to carry to the next iteration.
        """
        if isinstance(step, int):
            step = Const(step, I32)
        loop = ForLoop(lower, upper, step, list(init_values or []), iv_name, kind)
        return self.emit(loop)

    def end_loop(self, loop: ForLoop, yields: list[Value]) -> None:
        if len(yields) != len(loop.carried):
            raise ValueError(
                f"loop carries {len(loop.carried)} values, yielded {len(yields)}"
            )
        loop.body.append(Yield(list(yields)))

    def if_op(self, cond: Value, result_types: list[Type] | None = None) -> If:
        return self.emit(If(cond, result_types))

    def ret(self, value: Value | None = None) -> Return:
        return self.emit(Return(value))
