"""Scalar and generic instructions of the Vapor IR.

These are the instructions that both the scalar bytecode and (with vector
operand types) the vectorized bytecode use.  The SIMD-specific idioms of the
paper's Table 1 live in :mod:`repro.ir.idioms`.

Every instruction is a :class:`~repro.ir.values.Value` (its own result).
Instructions expose their operands through ``operands`` / ``set_operand`` so
generic rewriting utilities (cloning, constant folding, DCE) need no
per-class knowledge.
"""

from __future__ import annotations

from .types import BOOL, ScalarType, Type, VectorType
from .values import ArrayRef, Value

__all__ = [
    "Instr",
    "BinOp",
    "UnOp",
    "Cmp",
    "Select",
    "Convert",
    "Load",
    "Store",
    "BINARY_OPS",
    "UNARY_OPS",
    "CMP_OPS",
    "COMMUTATIVE_OPS",
]

#: Binary opcodes.  ``min``/``max`` are first-class because SIMD ISAs have
#: them and the sad/abs patterns rely on them.
BINARY_OPS = (
    "add",
    "sub",
    "mul",
    "div",
    "mod",
    "min",
    "max",
    "and",
    "or",
    "xor",
    "shl",
    "shr",
)

UNARY_OPS = ("neg", "abs", "not", "sqrt")

CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

COMMUTATIVE_OPS = frozenset({"add", "mul", "min", "max", "and", "or", "xor"})


class Instr(Value):
    """Base instruction: an operation producing (at most) one value."""

    #: printer mnemonic; subclasses override or synthesize it.
    mnemonic = "instr"

    def __init__(self, type: Type, operands: list[Value], name: str = "") -> None:
        super().__init__(type, name)
        self._operands = list(operands)

    @property
    def operands(self) -> list[Value]:
        return self._operands

    def set_operand(self, index: int, value: Value) -> None:
        self._operands[index] = value

    def replace_uses(self, mapping: dict[Value, Value]) -> None:
        """Redirect any operand found in ``mapping`` to its replacement."""
        for i, op in enumerate(self._operands):
            if op in mapping:
                self._operands[i] = mapping[op]

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction must not be dead-code eliminated."""
        return False

    def attrs(self) -> dict:
        """Printer/encoder attributes beyond operands (opcode, hints...)."""
        return {}

    def __repr__(self) -> str:
        ops = ", ".join(o.short() for o in self._operands)
        return f"{self.short()} = {self.mnemonic} {ops}"


class BinOp(Instr):
    """Elementwise binary arithmetic; works on scalars and vectors.

    Both operands must share the instruction's type (the verifier checks).
    """

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    mnemonic = property(lambda self: self.op)  # type: ignore[assignment]

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    def attrs(self) -> dict:
        return {"op": self.op}


class UnOp(Instr):
    """Elementwise unary arithmetic (neg, abs, bitwise not)."""

    def __init__(self, op: str, value: Value, name: str = "") -> None:
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        super().__init__(value.type, [value], name)
        self.op = op

    mnemonic = property(lambda self: self.op)  # type: ignore[assignment]

    @property
    def value(self) -> Value:
        return self._operands[0]

    def attrs(self) -> dict:
        return {"op": self.op}


class Cmp(Instr):
    """Comparison producing a boolean (or boolean vector for vector args)."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in CMP_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        if isinstance(lhs.type, VectorType):
            # Vector comparisons produce a lane mask with the operand's
            # shape (SIMD ISAs keep mask width == data width).
            result: Type = lhs.type
        else:
            result = BOOL
        super().__init__(result, [lhs, rhs], name)
        self.op = op

    mnemonic = property(lambda self: "cmp_" + self.op)  # type: ignore[assignment]

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    def attrs(self) -> dict:
        return {"op": self.op}


class Select(Instr):
    """``cond ? if_true : if_false`` — the result of if-conversion."""

    mnemonic = "select"

    def __init__(
        self, cond: Value, if_true: Value, if_false: Value, name: str = ""
    ) -> None:
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def cond(self) -> Value:
        return self._operands[0]

    @property
    def if_true(self) -> Value:
        return self._operands[1]

    @property
    def if_false(self) -> Value:
        return self._operands[2]


class Convert(Instr):
    """Scalar type conversion (sign extension, truncation, int<->float)."""

    mnemonic = "convert"

    def __init__(self, value: Value, to: ScalarType, name: str = "") -> None:
        super().__init__(to, [value], name)
        self.to = to

    @property
    def value(self) -> Value:
        return self._operands[0]

    def attrs(self) -> dict:
        return {"to": self.to.name}


class Load(Instr):
    """Scalar load ``array[indices...]``.

    Indices are scalar i32 values, one per array dimension.
    """

    mnemonic = "load"

    def __init__(self, array: ArrayRef, indices: list[Value], name: str = "") -> None:
        if len(indices) != array.rank:
            raise ValueError(
                f"load from {array.name}: {len(indices)} indices for rank "
                f"{array.rank}"
            )
        super().__init__(array.elem, [array, *indices], name)

    @property
    def array(self) -> ArrayRef:
        return self._operands[0]  # type: ignore[return-value]

    @property
    def indices(self) -> list[Value]:
        return self._operands[1:]


class Store(Instr):
    """Scalar store ``array[indices...] = value``.  Produces no usable value."""

    mnemonic = "store"

    def __init__(
        self, array: ArrayRef, indices: list[Value], value: Value, name: str = ""
    ) -> None:
        if len(indices) != array.rank:
            raise ValueError(
                f"store to {array.name}: {len(indices)} indices for rank "
                f"{array.rank}"
            )
        super().__init__(array.elem, [array, *indices, value], name)

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def array(self) -> ArrayRef:
        return self._operands[0]  # type: ignore[return-value]

    @property
    def indices(self) -> list[Value]:
        return self._operands[1:-1]

    @property
    def value(self) -> Value:
        return self._operands[-1]
