"""Type system for the Vapor IR.

The IR is typed throughout, mirroring the strongly typed CLI bytecode the
paper relies on ("Translating C to CLI notably results in no loss of semantic
or metadata information").  Two kinds of types exist:

* :class:`ScalarType` — fixed-width integers and IEEE floats.  The paper's
  kernel suite uses signed 8/16/32-bit integers and single/double floats,
  suffixed ``s8``/``s16``/``s32``/``fp``/``dp``.
* :class:`VectorType` — a vector of scalar elements.  At the *split layer*
  (vectorized bytecode) the lane count is symbolic: every vector occupies one
  full target vector register of ``VS`` bytes, so the lane count is
  ``VS / sizeof(T)`` and is only materialized by the online compiler
  (``get_VF`` in Table 1 of the paper).  At the machine layer the lane count
  is concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ScalarType",
    "VectorType",
    "Type",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "BOOL",
    "SCALAR_TYPES",
    "widened",
    "narrowed",
    "scalar_type_from_name",
]


@dataclass(frozen=True)
class ScalarType:
    """A fixed-width scalar type.

    Attributes:
        name: canonical spelling used by the printer and the frontend.
        size: width in bytes.
        is_float: True for IEEE floating point types.
    """

    name: str
    size: int
    is_float: bool

    @property
    def is_int(self) -> bool:
        return not self.is_float

    @property
    def bits(self) -> int:
        return self.size * 8

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used by the memory model and the VM."""
        if self.is_float:
            return np.dtype(f"float{self.bits}")
        return np.dtype(f"int{self.bits}")

    @property
    def min_value(self) -> float:
        if self.is_float:
            return float(np.finfo(self.numpy_dtype).min)
        return int(np.iinfo(self.numpy_dtype).min)

    @property
    def max_value(self) -> float:
        if self.is_float:
            return float(np.finfo(self.numpy_dtype).max)
        return int(np.iinfo(self.numpy_dtype).max)

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


I8 = ScalarType("i8", 1, False)
I16 = ScalarType("i16", 2, False)
I32 = ScalarType("i32", 4, False)
I64 = ScalarType("i64", 8, False)
F32 = ScalarType("f32", 4, True)
F64 = ScalarType("f64", 8, True)
#: Booleans are represented as one-byte integers; comparison results and
#: version-guard conditions have this type.
BOOL = ScalarType("bool", 1, False)

SCALAR_TYPES = (I8, I16, I32, I64, F32, F64, BOOL)

_BY_NAME = {t.name: t for t in SCALAR_TYPES}
# Frontend spellings.
_BY_NAME.update(
    {
        "char": I8,
        "short": I16,
        "int": I32,
        "long": I64,
        "float": F32,
        "double": F64,
    }
)


def scalar_type_from_name(name: str) -> ScalarType:
    """Look up a scalar type by IR or C-like spelling.

    Raises:
        KeyError: if the name is not a known type.
    """
    return _BY_NAME[name]


@dataclass(frozen=True)
class VectorType:
    """A vector of ``lanes`` elements of ``elem``.

    ``lanes is None`` denotes the *symbolic* lane count of the split layer:
    the vector fills one VS-byte register and the count is ``VS//elem.size``,
    known only to the online compiler.
    """

    elem: ScalarType
    lanes: int | None = None

    @property
    def is_symbolic(self) -> bool:
        return self.lanes is None

    @property
    def size(self) -> int:
        """Concrete byte size; only valid for materialized vectors."""
        if self.lanes is None:
            raise ValueError("symbolic vector type has no concrete size")
        return self.elem.size * self.lanes

    def with_lanes(self, vector_size: int) -> "VectorType":
        """Materialize the lane count for a target with VS ``vector_size``."""
        return VectorType(self.elem, vector_size // self.elem.size)

    def __repr__(self) -> str:
        lanes = "?" if self.lanes is None else str(self.lanes)
        return f"<{lanes} x {self.elem}>"

    def __str__(self) -> str:
        return repr(self)


Type = ScalarType | VectorType

_WIDEN = {I8: I16, I16: I32, I32: I64, F32: F64}
_NARROW = {v: k for k, v in _WIDEN.items()}


def widened(t: ScalarType) -> ScalarType:
    """The type of twice the width (``widen_mult``/``unpack`` result type).

    Raises:
        KeyError: if ``t`` has no wider counterpart (i64, f64, bool).
    """
    return _WIDEN[t]


def narrowed(t: ScalarType) -> ScalarType:
    """The type of half the width (``pack`` result type).

    Raises:
        KeyError: if ``t`` has no narrower counterpart.
    """
    return _NARROW[t]
