"""Structured control flow: blocks, loops, conditionals, functions.

The IR is *structured* (MLIR-style) rather than CFG-based: loops and
conditionals are first-class nested regions.  This matches how the paper's
offline vectorizer sees code — normalized countable loop nests — and keeps
the dependence/vectorization machinery tractable while the online compiler
flattens everything to branchy machine code.

Loop-carried scalar state (reduction accumulators and the like) is expressed
with *iteration arguments*: a :class:`ForLoop` owns a body :class:`Block`
whose first argument is the induction variable and whose remaining arguments
carry values across iterations; the block's trailing :class:`Yield` supplies
the next iteration's values; the loop's :class:`LoopResult` values are the
final carried values.
"""

from __future__ import annotations

from .instructions import Instr
from .types import I32, Type
from .values import BlockArg, Value

__all__ = [
    "Block",
    "Yield",
    "ForLoop",
    "LoopResult",
    "If",
    "IfResult",
    "Return",
    "Function",
    "Module",
]


class Block:
    """A straight-line sequence of instructions with optional arguments."""

    def __init__(self, args: list[BlockArg] | None = None) -> None:
        self.args: list[BlockArg] = list(args or [])
        self.instrs: list[Instr] = []

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Instr | None:
        """The trailing Yield/Return, if present."""
        if self.instrs and isinstance(self.instrs[-1], (Yield, Return)):
            return self.instrs[-1]
        return None

    def __iter__(self):
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)


class Yield(Instr):
    """Terminator carrying loop-carried / if-result values to the parent."""

    mnemonic = "yield"

    def __init__(self, values: list[Value]) -> None:
        super().__init__(I32, list(values))

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def values(self) -> list[Value]:
        return self._operands


class ForLoop(Instr):
    """A counted loop ``for (iv = lower; iv < upper; iv += step)``.

    Operands are ``[lower, upper, step, *init_values]``.  The ``body``
    block's args are ``[iv, *carried]``.  ``step`` is a Value so the
    vectorized form can step by the JIT-materialized ``get_VF`` result.

    Attributes:
        kind: "scalar" for source loops, "vector" for the main vectorized
            loop, "peel" / "epilogue" for the alignment-peel and remainder
            loops the vectorizer creates, "inner" for loops nested inside an
            outer-vectorized loop.
        annotations: free-form analysis/codegen notes (e.g. trip count).
    """

    mnemonic = "for"

    def __init__(
        self,
        lower: Value,
        upper: Value,
        step: Value,
        init_values: list[Value],
        iv_name: str = "i",
        kind: str = "scalar",
    ) -> None:
        super().__init__(I32, [lower, upper, step, *init_values])
        self.body = Block(args=[BlockArg(iv_name, I32, 0)])
        for k, init in enumerate(init_values):
            self.body.args.append(BlockArg(f"{iv_name}.carry{k}", init.type, k + 1))
        self.results = [
            LoopResult(self, k, init.type) for k, init in enumerate(init_values)
        ]
        self.kind = kind
        self.annotations: dict = {}

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def lower(self) -> Value:
        return self._operands[0]

    @property
    def upper(self) -> Value:
        return self._operands[1]

    @property
    def step(self) -> Value:
        return self._operands[2]

    @property
    def init_values(self) -> list[Value]:
        return self._operands[3:]

    @property
    def iv(self) -> BlockArg:
        return self.body.args[0]

    @property
    def carried(self) -> list[BlockArg]:
        return self.body.args[1:]

    def attrs(self) -> dict:
        return {"kind": self.kind}

    def __repr__(self) -> str:
        return (
            f"for {self.iv.short()} in [{self.lower.short()}, "
            f"{self.upper.short()}) step {self.step.short()} "
            f"carried={len(self.carried)} kind={self.kind}"
        )


class LoopResult(Value):
    """The final value of a loop-carried variable after the loop."""

    def __init__(self, loop: ForLoop, index: int, type: Type) -> None:
        super().__init__(type, f"{loop.iv.name}.out{index}")
        self.loop = loop
        self.index = index


class If(Instr):
    """A structured conditional, optionally yielding values.

    Used both for source-level conditionals and for the vectorizer's
    loop-versioning (guarded by :class:`~repro.ir.idioms.VersionGuard`).
    """

    mnemonic = "if"

    def __init__(self, cond: Value, result_types: list[Type] | None = None) -> None:
        super().__init__(I32, [cond])
        self.then_block = Block()
        self.else_block = Block()
        self.results = [
            IfResult(self, k, t) for k, t in enumerate(result_types or [])
        ]

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def cond(self) -> Value:
        return self._operands[0]

    def __repr__(self) -> str:
        return f"if {self.cond.short()} then[{len(self.then_block)}] else[{len(self.else_block)}]"


class IfResult(Value):
    """A value yielded by both arms of an :class:`If`."""

    def __init__(self, if_op: If, index: int, type: Type) -> None:
        super().__init__(type, f"if.out{index}")
        self.if_op = if_op
        self.index = index


class Return(Instr):
    """Function return; ``value`` may be None for void kernels."""

    mnemonic = "return"

    def __init__(self, value: Value | None = None) -> None:
        super().__init__(I32, [value] if value is not None else [])

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def value(self) -> Value | None:
        return self._operands[0] if self._operands else None


class Function:
    """A kernel: scalar parameters, array parameters, and a body block."""

    def __init__(
        self,
        name: str,
        scalar_params: list,
        array_params: list,
        return_type=None,
    ) -> None:
        self.name = name
        self.scalar_params = list(scalar_params)
        self.array_params = list(array_params)
        self.return_type = return_type
        self.body = Block()
        #: set by the vectorizer: "vector" bytecode vs "scalar" bytecode.
        self.form = "scalar"
        self.annotations: dict = {}

    @property
    def params(self) -> list:
        return self.scalar_params + self.array_params

    def find_array(self, name: str):
        for a in self.array_params:
            if a.name == name:
                return a
        raise KeyError(name)

    def __repr__(self) -> str:
        return f"Function({self.name}, form={self.form})"


class Module:
    """A compilation unit: a set of functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}

    def add(self, fn: Function) -> Function:
        self.functions[fn.name] = fn
        return fn

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __iter__(self):
        return iter(self.functions.values())
