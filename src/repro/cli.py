"""Command-line interface: ``python -m repro <command>``.

Commands mirror the toolchain's stages:

* ``compile``  — VaporC source -> vectorized bytecode (.vbc), the offline
  stage ("auto-vectorize once").
* ``disasm``   — print the IR of a .vbc container (the Figure 3 view).
* ``jit``      — lower a .vbc for a target and dump machine code + stats
  (the online stage, "run everywhere").
* ``kernels``  — list the built-in benchmark kernels.
* ``run``      — execute a built-in kernel through one of the Figure 4
  flows on a target, with correctness checking.
* ``report``   — regenerate the paper's figures/tables.
* ``verify``   — decode *and* structurally verify a .vbc container,
  reporting the classified rejection (kind + stream offset) on failure.
* ``chaos``    — run a seeded fault-injection campaign across every
  layer and assert the fail-soft invariant (see docs/resilience.md).
* ``serve``    — run the resilient JIT compilation service against a
  seeded synthetic request stream, or — with ``--listen HOST:PORT`` —
  behind the TCP network gateway until SIGTERM, which drains
  gracefully (see docs/service.md).
* ``trace``    — render a JSONL trace (from ``--trace-out``) as a
  phase-attributed span tree with wall-time and VM-cycle rollups.

``compile``, ``run``, ``report``, and ``serve`` accept ``--trace-out
FILE`` and ``--metrics-out FILE`` to record the observability spine
(:mod:`repro.obs`, docs/observability.md) for the invocation.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

__all__ = ["main"]


@contextmanager
def _obs_session(args):
    """Record tracing/metrics around one command when ``--trace-out`` /
    ``--metrics-out`` were given; write the artifacts (atomically) after
    the command returns.  Commands without the flags pay nothing."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield None
        return
    from . import obs

    with obs.recording() as ob:
        yield ob
    if trace_out:
        ob.write_trace(trace_out)
        print(f"trace written to {trace_out} "
              f"(render with: repro trace {trace_out})")
    if metrics_out:
        ob.write_metrics(metrics_out)
        print(f"metrics written to {metrics_out}")


def _read_text(path: str) -> str:
    """Read a text input file, with classified CLI-grade failure: missing
    or unreadable inputs are reported on stderr (no traceback) and the
    command exits 2, mirroring argparse's usage-error convention."""
    with open(path, "r") as f:
        return f.read()


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as f:
        return f.read()


def _input_error(path: str, exc: OSError) -> int:
    print(f"repro: cannot read {path!r}: {exc.strerror or exc}",
          file=sys.stderr)
    return 2


def _atomic_out(path: str, data: bytes) -> None:
    """Write a CLI artifact crash-safely (tempfile + fsync + rename): an
    interrupted ``repro compile``/``report --out`` must never leave a
    half-written artifact under the final name."""
    from .service.cache import atomic_write

    atomic_write(path, data)


def _cmd_compile(args) -> int:
    from . import obs
    from .api import frontend_phase, smoke_run, vectorize_phase
    from .bytecode import encode_module
    from .vectorizer import split_config

    try:
        source = _read_text(args.source)
    except OSError as exc:
        return _input_error(args.source, exc)
    module = frontend_phase(source)
    if args.scalar_only:
        with obs.span("vectorize", phase="vectorize") as sp:
            sp.set(skipped=True)
        out_module = module
    else:
        cfg = split_config(
            enable_alignment_opts=not args.no_alignment,
            enable_slp=not args.no_slp,
            enable_outer=not args.no_outer,
        )
        out_module = vectorize_phase(module, cfg)
        for fn in out_module:
            report = fn.annotations.get("vect_report", {})
            for loop, verdict in report.items():
                print(f"{fn.name}: {loop}: {verdict}")
    with obs.span("encode", phase="encode") as sp:
        blob = encode_module(out_module)
        sp.set(bytes=len(blob))
    _atomic_out(args.output, blob)
    print(f"wrote {args.output}: {len(blob)} bytes, "
          f"{len(out_module.functions)} function(s)")
    if getattr(args, "trace_out", None) or getattr(args, "metrics_out", None):
        # Compile-only invocations still trace all five phases: each
        # function gets a best-effort JIT + smoke execution on
        # synthesized inputs (failures are recorded on the span, never
        # fatal — the .vbc artifact above is already written).
        for fn in out_module:
            smoke_run(fn, module[fn.name], target=args.smoke_target)
    return 0


def _cmd_trace(args) -> int:
    """Render a JSONL trace as a phase-attributed span tree."""
    from .obs import TraceFormatError, load_trace, render_trace

    try:
        text = _read_text(args.trace)
    except OSError as exc:
        return _input_error(args.trace, exc)
    try:
        records = load_trace(text.splitlines())
    except TraceFormatError as exc:
        print(f"repro: {args.trace}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"repro: {args.trace}: empty trace", file=sys.stderr)
        return 1
    print(render_trace(records, phase=args.phase))
    return 0


def _cmd_disasm(args) -> int:
    from .bytecode import decode_module
    from .ir import print_function

    try:
        data = _read_bytes(args.bytecode)
    except OSError as exc:
        return _input_error(args.bytecode, exc)
    module = decode_module(data)
    for fn in module:
        if args.function and fn.name != args.function:
            continue
        print(print_function(fn))
        print()
    return 0


def _cmd_jit(args) -> int:
    from .bytecode import decode_module
    from .jit import MonoJIT, OptimizingJIT
    from .targets import get_target

    try:
        data = _read_bytes(args.bytecode)
    except OSError as exc:
        return _input_error(args.bytecode, exc)
    module = decode_module(data)
    target = get_target(args.target)
    jit = MonoJIT() if args.compiler == "mono" else OptimizingJIT()
    for fn in module:
        if args.function and fn.name != args.function:
            continue
        compiled = jit.compile(fn, target)
        print(compiled.mfunc.dump())
        stats = ", ".join(f"{k}={v}" for k, v in sorted(compiled.stats.items()))
        print(f"; target={target.name} compiler={jit.name} "
              f"compile={compiled.compile_seconds * 1e3:.2f}ms")
        print(f"; {stats}")
        print()
    return 0


def _cmd_kernels(args) -> int:
    from .kernels import all_kernels

    for kernel in all_kernels(args.category):
        marker = "" if kernel.expect_vectorized else "  [not vectorizable]"
        print(f"{kernel.name:18s} {kernel.category:10s} "
              f"{kernel.features}{marker}")
    return 0


def _cmd_run(args) -> int:
    from .harness import FLOWS, FlowRunner
    from .kernels import get_kernel

    try:
        kernel = get_kernel(args.kernel)
    except KeyError:
        print(f"unknown kernel {args.kernel!r}; see `kernels`", file=sys.stderr)
        return 2
    if args.flow not in FLOWS:
        print(f"unknown flow {args.flow!r}; one of {sorted(FLOWS)}",
              file=sys.stderr)
        return 2
    runner = FlowRunner(engine=args.engine)
    inst = kernel.instantiate(args.size)
    result = runner.run(inst, args.flow, args.target)
    print(f"{result.kernel} via {result.flow} on {result.target}: "
          f"{result.cycles:.0f} cycles "
          f"({result.bytecode_bytes} bytecode bytes, "
          f"checked={'yes' if result.checked else 'no'})")
    return 0


def _cmd_report(args) -> int:
    from .harness import (
        FlowRunner,
        figure5,
        figure6,
        format_figure5,
        format_figure6,
        format_table3,
        format_timings,
        table3,
    )

    jobs = args.jobs
    runner = FlowRunner() if jobs <= 1 else None
    lines = []
    timing_lines = []
    targets5 = args.targets.split(",") if args.targets else ["sse", "altivec"]
    targets6 = args.targets.split(",") if args.targets else [
        "sse", "altivec", "neon"
    ]
    for t in targets5:
        result = figure5(t, runner=runner, jobs=jobs, quick=args.quick)
        lines.append(format_figure5(result))
        lines.append("")
        timing_lines.append(
            format_timings(result.cell_seconds, f"figure5/{t} timings")
        )
    for t in targets6:
        result = figure6(t, runner=runner, jobs=jobs)
        lines.append(format_figure6(result))
        lines.append("")
        timing_lines.append(
            format_timings(result.cell_seconds, f"figure6/{t} timings")
        )
    lines.append(format_table3(table3(runner=runner or FlowRunner())))
    text = "\n".join(lines)
    print(text)
    if args.timings:
        # Wall-clock stats are machine-dependent; keep them out of the
        # deterministic report body (stderr) so --jobs N output stays
        # byte-identical to --jobs 1.
        print("\n" + "\n\n".join(timing_lines), file=sys.stderr)
    if args.out:
        _atomic_out(args.out, (text + "\n").encode())
        print(f"\nreport written to {args.out}")
    return 0


def _cmd_verify(args) -> int:
    from .bytecode import verify_module_bytes
    from .bytecode.writer import FormatError

    try:
        data = _read_bytes(args.bytecode)
    except OSError as exc:
        return _input_error(args.bytecode, exc)
    try:
        module = verify_module_bytes(data)
    except FormatError as exc:
        kind = getattr(exc, "kind", "format")
        offset = getattr(exc, "offset", None)
        where = f" at offset {offset}" if offset is not None else ""
        print(f"{args.bytecode}: REJECTED [{kind}]{where}: {exc}",
              file=sys.stderr)
        return 1
    fns = ", ".join(fn.name for fn in module)
    print(f"{args.bytecode}: OK ({len(data)} bytes, "
          f"{len(module.functions)} function(s): {fns})")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from .harness.chaos import (
        run_campaign,
        run_fleet_campaign,
        run_gateway_campaign,
        run_service_campaign,
    )

    if args.profile == "service":
        report = run_service_campaign(
            n_faults=args.faults, seed=args.seed, size=args.size,
            farm_workers=args.farm_workers,
        )
    elif args.profile == "gateway":
        report = run_gateway_campaign(
            n_faults=args.faults, seed=args.seed, size=args.size,
            farm_workers=args.farm_workers or 2,
        )
    elif args.profile == "fleet":
        report = run_fleet_campaign(
            n_faults=args.faults, seed=args.seed, size=args.size,
            replicas=args.replicas, farm_workers=args.farm_workers or 1,
        )
    else:
        report = run_campaign(
            n_faults=args.faults,
            seed=args.seed,
            size=args.size,
            include_harness=args.harness,
        )
    print(report.summary())
    if args.stats_out:
        payload = {
            "profile": args.profile,
            "seed": args.seed,
            "faults": len(report.trials),
            "ok": report.ok,
            "outcomes": report.counts(),
            "service": report.service_stats,
        }
        _atomic_out(
            args.stats_out,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(),
        )
        print(f"stats written to {args.stats_out}")
    if not report.ok:
        for t in report.failures:
            print(f"  FAIL {t.layer}/{t.kernel}: {t.fault} -> "
                  f"{t.outcome}: {t.detail}", file=sys.stderr)
        return 1
    return 0


def _serve_listen(args, svc) -> int:
    """``serve --listen``: put the network gateway in front of the
    service and serve until SIGTERM/SIGINT, then drain gracefully —
    readiness flips first, in-flight requests finish, the compile farm
    shuts down, exit 0 (docs/service.md §8)."""
    import asyncio

    from .service.client import parse_address
    from .service.gateway import GatewayServer

    host, port = parse_address(args.listen)
    gw = GatewayServer(
        svc, host, port,
        max_inflight=args.max_inflight,
        idle_timeout_s=args.idle_timeout,
        drain_grace_s=args.drain_grace,
        drain_budget_s=args.drain_budget,
        batch_window_s=args.batch_window_ms / 1000.0,
        batch_max=args.batch_max,
        close_service=True,
    )

    async def _run() -> None:
        await gw.start()
        # Machine-readable port announcement FIRST — supervisors parsing
        # child stdout for the ephemeral port must never race readiness.
        print(f"LISTENING {gw.address[0]}:{gw.address[1]}", flush=True)
        print(f"gateway listening on {gw.address[0]}:{gw.address[1]} "
              f"(max_inflight={gw.max_inflight}; SIGTERM drains "
              f"gracefully)", flush=True)
        await gw.run_until_signal()

    asyncio.run(_run())
    stats = gw.stats()
    print(f"gateway drained: {stats['served']} request(s) served, "
          f"{stats['rejected_overload']} shed, "
          f"{stats['rejected_drain']} drain-rejected, "
          f"{stats['frame_errors']} frame error(s)", flush=True)
    return 0


def _serve_fleet(args) -> int:
    """``serve --replicas N``: supervised replica fleet sharing one
    cache directory, self-healing until SIGTERM/SIGINT
    (docs/service.md §9)."""
    import shutil
    import signal
    import tempfile
    import threading

    from .service.supervisor import FleetSupervisor

    tmp_cache = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        tmp_cache = tempfile.mkdtemp(prefix="repro-fleet-cache-")
        cache_dir = tmp_cache
    stop = threading.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_: stop.set())
    sup = FleetSupervisor(
        replicas=args.replicas,
        cache_dir=cache_dir,
        farm_workers=args.farm_workers,
        max_inflight=args.max_inflight,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        marker_ttl_s=args.marker_ttl,
        farm_budget_s=args.farm_budget,
    )
    try:
        sup.start()
        for i, addr in enumerate(sup.slots()):
            where = f"{addr[0]}:{addr[1]}" if addr else "down"
            print(f"REPLICA {i} {where}", flush=True)
        print(f"fleet of {args.replicas} replica(s) up "
              f"(cache: {cache_dir}; SIGTERM stops the fleet)", flush=True)
        stop.wait()
    finally:
        sup.stop()
        if tmp_cache is not None:
            shutil.rmtree(tmp_cache, ignore_errors=True)
    st = sup.stats()
    print(f"fleet stopped: {st['restarts']} restart(s), "
          f"{st['parked']} parked replica(s)", flush=True)
    return 0


def _cmd_serve(args) -> int:
    """Drive the resilient JIT service with a seeded synthetic stream."""
    import json
    import random
    import shutil
    import tempfile

    from .harness.flows import FLOWS
    from .kernels import all_kernels
    from .service import KernelService, ServiceRequest

    if args.replicas:
        return _serve_fleet(args)
    rng = random.Random(args.seed)
    kernels = [k.name for k in all_kernels("kernel")][:6]
    flows = sorted(FLOWS)
    targets = ["sse", "altivec", "neon", "scalar"]
    tmp_cache = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        tmp_cache = tempfile.mkdtemp(prefix="repro-serve-cache-")
        cache_dir = tmp_cache
    svc_kwargs = {}
    if args.marker_ttl is not None:
        svc_kwargs["marker_ttl_s"] = args.marker_ttl
    if args.farm_budget is not None:
        svc_kwargs["farm_budget_s"] = args.farm_budget
    svc = KernelService(
        cache_dir=cache_dir,
        queue_limit=args.queue_limit,
        workers=args.jobs,
        farm_workers=args.farm_workers,
        seed=args.seed,
        **svc_kwargs,
    )
    try:
        if args.listen is not None:
            return _serve_listen(args, svc)
        reqs = [
            ServiceRequest(
                kernel=rng.choice(kernels),
                flow=rng.choice(flows),
                target=rng.choice(targets),
                size=args.size,
            )
            for _ in range(args.requests)
        ]
        responses = svc.serve(reqs)
        by_status: dict[str, int] = {}
        warm = 0
        for resp in responses:
            by_status[resp.status] = by_status.get(resp.status, 0) + 1
            warm += bool(resp.from_cache)
        statuses = ", ".join(
            f"{k}={v}" for k, v in sorted(by_status.items())
        )
        health = svc.health()
        stats = svc.stats()
        print(f"served {len(responses)} request(s): {statuses}")
        print(f"cache: {warm} warm hit(s), "
              f"{stats['cache']['entries']} entr(ies), "
              f"hit_ratio={stats['cache']['hit_ratio']:.2f}")
        sf = stats["singleflight"]
        print(f"singleflight: {sf['leaders']} leader(s), "
              f"{sf['followers']} coalesced follower(s)")
        if stats["farm"] is not None:
            fm = stats["farm"]
            print(f"farm: {fm['workers']} worker(s), "
                  f"{fm['completed']}/{fm['dispatched']} dispatch(es) "
                  f"completed, {fm['crashes']} crash(es), "
                  f"{fm['stalls']} stall(s), {fm['rebuilds']} rebuild(s)")
        print(f"health: {health['status']} "
              f"(queue {health['queue_depth']}/{health['queue_limit']}, "
              f"breakers: "
              + ", ".join(f"{t}={s}"
                          for t, s in sorted(health['breakers'].items()))
              + ")")
        if args.stats_out:
            payload = {
                "requests": len(responses),
                "statuses": by_status,
                "health": health,
                "stats": stats,
            }
            _atomic_out(
                args.stats_out,
                (json.dumps(payload, indent=2, sort_keys=True)
                 + "\n").encode(),
            )
            print(f"stats written to {args.stats_out}")
        degraded = sum(
            v for k, v in by_status.items()
            if k in ("shed", "rejected")
        )
        return 1 if degraded == len(responses) and responses else 0
    finally:
        svc.close()
        if tmp_cache is not None:
            shutil.rmtree(tmp_cache, ignore_errors=True)


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-out", metavar="FILE",
                   help="record trace spans for this invocation as JSONL "
                   "(render with `repro trace FILE`)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the metrics-registry snapshot as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vapor SIMD split-vectorization toolchain (CGO 2011 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="VaporC -> vectorized bytecode")
    p.add_argument("source", help="VaporC source file")
    p.add_argument("-o", "--output", default="out.vbc")
    p.add_argument("--scalar-only", action="store_true",
                   help="skip the offline vectorizer")
    p.add_argument("--no-alignment", action="store_true",
                   help="disable alignment hints/versioning (SV-A.b ablation)")
    p.add_argument("--no-slp", action="store_true")
    p.add_argument("--no-outer", action="store_true")
    p.add_argument("--smoke-target", default="sse",
                   help="target for the best-effort smoke execution "
                   "performed when tracing (default sse)")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("disasm", help="print the IR of a .vbc container")
    p.add_argument("bytecode")
    p.add_argument("--function")
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("jit", help="lower bytecode for a target")
    p.add_argument("bytecode")
    p.add_argument("--target", default="sse",
                   help="sse|altivec|neon|avx|vsx|scalar")
    p.add_argument("--compiler", default="gcc4cli",
                   choices=["mono", "gcc4cli"])
    p.add_argument("--function")
    p.set_defaults(func=_cmd_jit)

    p = sub.add_parser("kernels", help="list built-in benchmark kernels")
    p.add_argument("--category", choices=["kernel", "polybench"])
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser("run", help="run a built-in kernel through a flow")
    p.add_argument("kernel")
    p.add_argument("--flow", default="split_vec_gcc4cli")
    p.add_argument("--target", default="sse")
    p.add_argument("--size", type=int, default=None)
    from .machine.registry import DEFAULT_ENGINE, engine_names

    p.add_argument("--engine", default=DEFAULT_ENGINE,
                   choices=list(engine_names()),
                   help="execution engine (bit-identical results)")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("report", help="regenerate the paper's figures/tables")
    p.add_argument("--out")
    p.add_argument("--targets", help="comma-separated target list")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes for the experiment sweeps "
                   "(report output is byte-identical for any job count)")
    p.add_argument("--quick", action="store_true",
                   help="use the historical small Figure 5 problem sizes")
    p.add_argument("--timings", action="store_true",
                   help="print per-sweep wall-clock stats to stderr")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "verify", help="decode and structurally verify a .vbc container"
    )
    p.add_argument("bytecode")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "chaos", help="seeded fault-injection campaign (fail-soft check)"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", type=int, default=200,
                   help="number of faults to inject")
    p.add_argument("--size", type=int, default=16,
                   help="kernel problem size for the trials")
    p.add_argument("--harness", action="store_true",
                   help="also inject worker crash/stall into a real "
                   "process-pool sweep (slower)")
    p.add_argument("--profile", default="layers",
                   choices=["layers", "service", "gateway", "fleet"],
                   help="'layers' injects into the pipeline stages; "
                   "'service' soaks a live KernelService (cache "
                   "corruption, torn writes, breaker trips, overload); "
                   "'gateway' soaks a live network gateway with "
                   "wire-level hostility (garbage/truncated/slowloris "
                   "frames, torn connections, overload, wire deadlines) "
                   "plus a graceful-drain and leaked-worker audit; "
                   "'fleet' SIGKILLs supervised replicas mid-compile / "
                   "mid-cache-write / mid-frame / while holding a .lead "
                   "marker and audits crash consistency end-to-end")
    p.add_argument("--farm-workers", type=int, default=0,
                   help="for --profile service: run the soaked service "
                   "with a compile farm and mix in farm faults (worker "
                   "crash/stall, stale cross-replica leader markers); "
                   "for --profile gateway the default is 2, for fleet 1")
    p.add_argument("--replicas", type=int, default=3,
                   help="for --profile fleet: supervised replica count")
    p.add_argument("--stats-out",
                   help="write the campaign census (and final service "
                   "stats, for --profile service) as JSON")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run the resilient JIT service on a synthetic request stream",
    )
    p.add_argument("--requests", type=int, default=32,
                   help="number of synthetic requests to serve")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--size", type=int, default=64,
                   help="kernel problem size")
    p.add_argument("--cache-dir",
                   help="persistent kernel-cache directory (default: "
                   "in-process temporary cache)")
    p.add_argument("-j", "--jobs", "--workers", type=int, default=4,
                   dest="jobs",
                   help="service worker threads (--workers is an alias)")
    p.add_argument("--farm-workers", type=int, default=0,
                   help="compile-farm worker processes (0 = compile "
                   "inline under the GIL); cold JIT compiles are "
                   "dispatched cross-process so distinct kernels "
                   "compile on distinct cores")
    p.add_argument("--queue-limit", type=int, default=32,
                   help="admission-queue bound (requests beyond it shed)")
    p.add_argument("--marker-ttl", type=float, default=None,
                   help="cross-replica leader-marker TTL in seconds "
                   "(stale .lead markers are reclaimed after this)")
    p.add_argument("--farm-budget", type=float, default=None,
                   help="per-flight compile budget in seconds for the "
                   "compile farm")
    p.add_argument("--replicas", type=int, default=0,
                   help="run a supervised fleet of N gateway replicas "
                   "sharing one cache directory instead of a single "
                   "process (self-healing: dead/wedged replicas are "
                   "restarted with backoff, flapping ones parked)")
    p.add_argument("--stats-out",
                   help="write health + stats snapshot as JSON")
    p.add_argument("--listen", nargs="?", const="127.0.0.1:0",
                   metavar="HOST:PORT",
                   help="serve over TCP instead of the synthetic stream: "
                   "bind the network gateway (port 0 = ephemeral), serve "
                   "until SIGTERM/SIGINT, then drain gracefully and "
                   "exit 0")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="gateway backpressure bound: concurrent requests "
                   "beyond it get an immediate classified shed")
    p.add_argument("--idle-timeout", type=float, default=30.0,
                   help="per-read idle timeout reclaiming slowloris "
                   "connections")
    p.add_argument("--drain-grace", type=float, default=0.05,
                   help="seconds readiness answers not-ready before the "
                   "listener closes on drain")
    p.add_argument("--drain-budget", type=float, default=10.0,
                   help="seconds in-flight requests get to finish during "
                   "drain")
    p.add_argument("--batch-window-ms", type=float, default=0.0,
                   help="pre-admission batching window in milliseconds: "
                   "same-shape compile requests arriving within it merge "
                   "into one flight group (one admission slot, one "
                   "compile, fanned out to every waiter); 0 disables "
                   "batching")
    p.add_argument("--batch-max", type=int, default=16,
                   help="flush a flight group early once it holds this "
                   "many waiters (bounds fan-out latency under a "
                   "stampede)")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="render a JSONL trace (--trace-out) as a span tree",
    )
    p.add_argument("trace", help="trace file written by --trace-out")
    p.add_argument("--phase",
                   help="only show spans of one phase (frontend, "
                   "vectorize, encode, jit, vm, service, ...)")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    with _obs_session(args):
        rc = args.func(args)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
